//! The cluster-control policy family: steal-victim choice and
//! migration acceptance as pluggable policies, bundled with the
//! [`Dispatcher`] into one [`ClusterPolicy`].
//!
//! PR 3 hard-coded steal and migration decisions inside the cluster
//! event loop; this module lifts them behind traits sharing the
//! [`DispatchContext`] the dispatcher already reads, so the engine only
//! *sequences* events (sync nodes → consult policy → apply transfer)
//! and every decision — routing, victim choice, acceptance — is
//! swappable and testable in isolation. The default implementations
//! ([`BacklogGainSteal`], [`BacklogThresholdMigration`]) reproduce the
//! PR 3 behavior bit-exactly under free transfers, and generalize it by
//! charging the pool's [`crate::TransferCostConfig`] against every
//! prospective move.

use dysta_workload::Request;

use crate::dispatch::{DispatchContext, Dispatcher};
use crate::{DispatchPolicy, MigrationConfig, StealConfig};

/// One stealable request on a victim node, pre-priced for a specific
/// thief: the engine enumerates these (every queued, never-started
/// request on every peer) and the [`StealPolicy`] ranks them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StealCandidate {
    /// Node currently holding the request.
    pub victim: usize,
    /// Request id.
    pub task_id: u64,
    /// Request arrival time (ns).
    pub arrival_ns: u64,
    /// Absolute deadline (arrival + SLO, saturating).
    pub deadline_ns: u64,
    /// LUT-estimated isolated latency of the request (unscaled).
    pub est_ns: f64,
    /// Estimated service on the victim (est × the victim's stored
    /// per-task scale).
    pub on_victim_ns: f64,
    /// Estimated service on the thief (est × the thief's effective
    /// scale for the request's family).
    pub on_thief_ns: f64,
    /// Weight/activation re-fetch cost the thief would pay to take it.
    pub transfer_cost_ns: u64,
}

/// Chooses what an idle node steals.
pub trait StealPolicy {
    /// Stable lower-case policy name.
    fn name(&self) -> &str;

    /// Picks the candidate the idle `thief` should pull, as an index
    /// into `candidates`, or `None` to steal nothing this tick.
    /// `candidates` covers every queued, never-started request on every
    /// peer; implementations must be pure functions of their arguments
    /// (the engine may re-consult them at any tick).
    fn choose(
        &self,
        thief: usize,
        candidates: &[StealCandidate],
        ctx: &DispatchContext<'_>,
        cfg: &StealConfig,
    ) -> Option<usize>;
}

/// The default steal policy: pull the best request from the single
/// most-backlogged peer, provided the pool is imbalanced enough and the
/// move — including its transfer cost — finishes the request sooner
/// than the victim's whole backlog would.
///
/// Victim: the peer with the largest LUT-estimated backlog that holds
/// stealable work (smaller id on ties), gated by
/// [`StealConfig::min_imbalance`] over the pool mean. Candidate: the
/// request whose move frees the most victim time net of what the thief
/// pays (`on_victim − on_thief − transfer_cost`), requiring
/// `on_thief + transfer_cost < victim backlog` so stealing can never
/// extend the tail; ties prefer the bigger victim-side estimate, then
/// the smaller id. Under [`crate::TransferCostConfig::FREE`] this is
/// bit-exact with the PR 3 in-engine steal pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BacklogGainSteal;

impl BacklogGainSteal {
    /// Creates the default steal policy.
    pub fn new() -> Self {
        BacklogGainSteal
    }
}

impl StealPolicy for BacklogGainSteal {
    fn name(&self) -> &str {
        "backlog-gain"
    }

    fn choose(
        &self,
        thief: usize,
        candidates: &[StealCandidate],
        ctx: &DispatchContext<'_>,
        cfg: &StealConfig,
    ) -> Option<usize> {
        let mean = ctx.mean_lut_backlog_ns();
        if mean <= 0.0 {
            return None;
        }
        // Most-backlogged peer holding stealable work; smaller id on
        // ties.
        let victim = ctx
            .nodes
            .iter()
            .filter(|n| n.id != thief && candidates.iter().any(|c| c.victim == n.id))
            .max_by(|a, b| {
                a.lut_backlog_ns
                    .total_cmp(&b.lut_backlog_ns)
                    .then(b.id.cmp(&a.id))
            })?
            .id;
        let victim_backlog = ctx.nodes[victim].lut_backlog_ns;
        if victim_backlog < cfg.min_imbalance * mean {
            return None;
        }
        // Best candidate on that victim: max gain net of the transfer
        // cost (ties: bigger victim-side estimate, then smaller id).
        let mut best: Option<(f64, f64, u64, usize)> = None;
        for (i, c) in candidates.iter().enumerate() {
            if c.victim != victim {
                continue;
            }
            let landed = c.on_thief_ns + c.transfer_cost_ns as f64;
            if landed >= victim_backlog {
                continue;
            }
            let gain = c.on_victim_ns - landed;
            let better = match &best {
                None => true,
                Some((bg, bv, bid, _)) => match gain.total_cmp(bg) {
                    std::cmp::Ordering::Greater => true,
                    std::cmp::Ordering::Equal => match c.on_victim_ns.total_cmp(bv) {
                        std::cmp::Ordering::Greater => true,
                        std::cmp::Ordering::Equal => c.task_id < *bid,
                        std::cmp::Ordering::Less => false,
                    },
                    std::cmp::Ordering::Less => false,
                },
            };
            if better {
                best = Some((gain, c.on_victim_ns, c.task_id, i));
            }
        }
        best.map(|(_, _, _, i)| i)
    }
}

/// Decides which nodes the periodic rebalance pass drains and whether a
/// dispatcher-proposed move is applied.
pub trait MigrationPolicy {
    /// Stable lower-case policy name.
    fn name(&self) -> &str;

    /// True when `src`'s queue should be re-offered to the dispatcher
    /// under this snapshot. Consulted before every candidate (the
    /// snapshot refreshes after each applied move), so returning `false`
    /// stops draining a node the pass has already rebalanced enough.
    fn should_rebalance(
        &self,
        src: usize,
        ctx: &DispatchContext<'_>,
        cfg: &MigrationConfig,
    ) -> bool;

    /// True when moving `request` from `src` to the dispatcher-proposed
    /// `target` should be applied.
    fn accept(
        &self,
        request: &Request,
        src: usize,
        target: usize,
        ctx: &DispatchContext<'_>,
        cfg: &MigrationConfig,
    ) -> bool;
}

/// The default migration policy: rebalance nodes whose LUT-estimated
/// backlog exceeds [`MigrationConfig::min_imbalance`] times the pool
/// mean, and apply a move only when the target — after paying the
/// transfer cost — is still strictly less backlogged than the source.
/// Under [`crate::TransferCostConfig::FREE`] this is bit-exact with the
/// PR 3 in-engine migration pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BacklogThresholdMigration;

impl BacklogThresholdMigration {
    /// Creates the default migration policy.
    pub fn new() -> Self {
        BacklogThresholdMigration
    }
}

impl MigrationPolicy for BacklogThresholdMigration {
    fn name(&self) -> &str {
        "backlog-threshold"
    }

    fn should_rebalance(
        &self,
        src: usize,
        ctx: &DispatchContext<'_>,
        cfg: &MigrationConfig,
    ) -> bool {
        let mean = ctx.mean_lut_backlog_ns();
        mean > 0.0 && ctx.nodes[src].lut_backlog_ns > cfg.min_imbalance * mean
    }

    fn accept(
        &self,
        request: &Request,
        src: usize,
        target: usize,
        ctx: &DispatchContext<'_>,
        _cfg: &MigrationConfig,
    ) -> bool {
        if target == src {
            return false;
        }
        let cost = ctx.request_transfer_cost_ns(request) as f64;
        ctx.nodes[target].lut_backlog_ns + cost < ctx.nodes[src].lut_backlog_ns
    }
}

/// The full cluster control surface: request routing plus the steal and
/// migration sides, consulted by [`crate::simulate_cluster_with`].
///
/// [`crate::simulate_cluster`] wraps a bare dispatcher in this bundle
/// with the default steal/migration policies, which keeps the
/// four-argument call sites (and their behavior) unchanged.
pub struct ClusterPolicy {
    /// Routes each admitted (or re-offered) request to a node.
    pub dispatcher: Box<dyn Dispatcher>,
    /// Chooses what idle nodes steal.
    pub steal: Box<dyn StealPolicy>,
    /// Gates the periodic rebalance pass.
    pub migration: Box<dyn MigrationPolicy>,
}

impl ClusterPolicy {
    /// Bundles `dispatcher` with the default steal and migration
    /// policies.
    pub fn new(dispatcher: Box<dyn Dispatcher>) -> Self {
        ClusterPolicy {
            dispatcher,
            steal: Box::new(BacklogGainSteal::new()),
            migration: Box::new(BacklogThresholdMigration::new()),
        }
    }

    /// Convenience: the bundle for a shipped [`DispatchPolicy`].
    pub fn from_dispatch(policy: DispatchPolicy) -> Self {
        ClusterPolicy::new(policy.build())
    }

    /// Replaces the steal policy.
    pub fn with_steal(mut self, steal: Box<dyn StealPolicy>) -> Self {
        self.steal = steal;
        self
    }

    /// Replaces the migration policy.
    pub fn with_migration(mut self, migration: Box<dyn MigrationPolicy>) -> Self {
        self.migration = migration;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::NodeView;
    use crate::{AcceleratorKind, TransferCostConfig};
    use dysta_core::ModelInfoLut;

    fn view(id: usize, backlog: f64) -> NodeView {
        NodeView {
            id,
            accelerator: AcceleratorKind::EyerissV2,
            capacity: 1.0,
            mismatch_slowdown: 2.5,
            now_ns: 0,
            queue_len: 0,
            lut_backlog_ns: backlog,
            predicted_backlog_ns: backlog,
            earliest_deadline_ns: u64::MAX,
            total_slack_ns: 0.0,
            transfer_cost_ns: 0,
            busy_ns: 0,
        }
    }

    fn candidate(victim: usize, task_id: u64, est: f64, cost: u64) -> StealCandidate {
        StealCandidate {
            victim,
            task_id,
            arrival_ns: 0,
            deadline_ns: u64::MAX,
            est_ns: est,
            on_victim_ns: est,
            on_thief_ns: est,
            transfer_cost_ns: cost,
        }
    }

    #[test]
    fn steal_targets_most_backlogged_victim_and_respects_threshold() {
        let lut = ModelInfoLut::default();
        let views = [view(0, 0.0), view(1, 40.0), view(2, 100.0)];
        let ctx = DispatchContext {
            now_ns: 0,
            nodes: &views,
            lut: &lut,
            transfer_cost: &TransferCostConfig::FREE,
            reoffer_src: None,
        };
        let candidates = [candidate(1, 10, 5.0, 0), candidate(2, 20, 5.0, 0)];
        let policy = BacklogGainSteal::new();
        let cfg = StealConfig::default();
        // Node 2 is the most backlogged: its candidate wins.
        let pick = policy.choose(0, &candidates, &ctx, &cfg).unwrap();
        assert_eq!(candidates[pick].task_id, 20);
        // A tight threshold (victim must exceed 3x the mean ~46.7)
        // suppresses the steal entirely.
        let strict = StealConfig {
            min_imbalance: 3.0,
            ..cfg
        };
        assert_eq!(policy.choose(0, &candidates, &ctx, &strict), None);
    }

    #[test]
    fn transfer_cost_disqualifies_marginal_steals() {
        let lut = ModelInfoLut::default();
        let views = [view(0, 0.0), view(1, 100.0)];
        let ctx = DispatchContext {
            now_ns: 0,
            nodes: &views,
            lut: &lut,
            transfer_cost: &TransferCostConfig::FREE,
            reoffer_src: None,
        };
        let cfg = StealConfig {
            min_imbalance: 1.0,
            ..StealConfig::default()
        };
        let policy = BacklogGainSteal::new();
        // Free: on_thief (60) < victim backlog (100) qualifies.
        let free = [candidate(1, 1, 60.0, 0)];
        assert!(policy.choose(0, &free, &ctx, &cfg).is_some());
        // Costed: 60 + 50 >= 100 — the move would outlast the victim's
        // whole backlog, so it never fires.
        let costed = [candidate(1, 1, 60.0, 50)];
        assert_eq!(policy.choose(0, &costed, &ctx, &cfg), None);
    }

    #[test]
    fn migration_accepts_only_strictly_cheaper_targets_net_of_cost() {
        use dysta_models::ModelId;
        use dysta_sparsity::SparsityPattern;
        use dysta_trace::SparseModelSpec;
        use dysta_workload::Request;

        let lut = ModelInfoLut::default();
        let views = [view(0, 100.0), view(1, 99.0)];
        let ctx = DispatchContext {
            now_ns: 0,
            nodes: &views,
            lut: &lut,
            transfer_cost: &TransferCostConfig::FREE,
            reoffer_src: None,
        };
        let req = Request {
            id: 0,
            spec: SparseModelSpec::new(ModelId::ResNet50, SparsityPattern::Dense, 0.0),
            sample_index: 0,
            arrival_ns: 0,
            slo_ns: u64::MAX,
        };
        let policy = BacklogThresholdMigration::new();
        let cfg = MigrationConfig::default();
        assert!(policy.accept(&req, 0, 1, &ctx, &cfg));
        assert!(!policy.accept(&req, 0, 0, &ctx, &cfg), "self-move");
        assert!(!policy.accept(&req, 1, 0, &ctx, &cfg), "uphill move");
        // With a base cost wider than the 1 ns gap the move stops
        // paying for itself. (An unprofiled spec prices at base only.)
        let costed = TransferCostConfig {
            base_ns: 10,
            compute_fraction: 0.0,
        };
        let ctx_costed = DispatchContext {
            transfer_cost: &costed,
            ..ctx
        };
        assert!(!policy.accept(&req, 0, 1, &ctx_costed, &cfg));
    }
}
