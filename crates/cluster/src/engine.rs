//! The cluster event loop: N node engines behind one dispatcher.

use dysta_core::{ModelInfoLut, SparseLatencyPredictor};
use dysta_sim::NodeEngine;
use dysta_workload::Workload;

use crate::dispatch::{Dispatcher, NodeView};
use crate::report::{ClusterReport, NodeReport};
use crate::ClusterConfig;

/// Replays `workload` on a cluster of nodes behind `dispatcher`.
///
/// Causality: before a request is routed, every node is advanced up to
/// the request's arrival time ([`NodeEngine::run_until`]), so the
/// dispatcher sees exactly the queue states a real front-end could have
/// observed at that instant. Routing is immediate and final.
///
/// Deterministic: identical inputs produce identical reports.
///
/// # Panics
///
/// Panics if the workload is empty or the dispatcher returns an
/// out-of-range node index.
///
/// # Examples
///
/// ```
/// use dysta_cluster::{simulate_cluster, AcceleratorKind, ClusterConfig, DispatchPolicy};
/// use dysta_core::Policy;
/// use dysta_workload::{Scenario, WorkloadBuilder};
///
/// let w = WorkloadBuilder::new(Scenario::MultiCnn)
///     .num_requests(40)
///     .samples_per_variant(4)
///     .seed(1)
///     .build();
/// let pool = ClusterConfig::homogeneous(4, AcceleratorKind::EyerissV2, Policy::Dysta);
/// let report = simulate_cluster(&w, DispatchPolicy::JoinShortestQueue.build().as_mut(), &pool);
/// assert_eq!(report.completed_total(), 40);
/// ```
pub fn simulate_cluster(
    workload: &Workload,
    dispatcher: &mut dyn Dispatcher,
    config: &ClusterConfig,
) -> ClusterReport {
    let requests = workload.requests();
    assert!(!requests.is_empty(), "workload must contain requests");
    let lut = ModelInfoLut::from_store(workload.store());
    let predictor = SparseLatencyPredictor::default();

    let mut nodes: Vec<NodeEngine<'_>> = config
        .nodes
        .iter()
        .enumerate()
        .map(|(id, nc)| NodeEngine::new(id, nc.policy.build_with(nc.dysta), nc.engine, lut.clone()))
        .collect();
    let mut routed = vec![0usize; nodes.len()];

    for request in requests {
        // Advance the pool to the arrival instant so queue observations
        // are causal.
        for node in &mut nodes {
            node.run_until(request.arrival_ns);
        }
        let views: Vec<NodeView> = nodes
            .iter()
            .zip(&config.nodes)
            .map(|(node, nc)| NodeView {
                id: node.id(),
                accelerator: nc.accelerator,
                now_ns: node.now_ns(),
                queue_len: node.queue_len(),
                lut_backlog_ns: node
                    .estimated_backlog_ns(|t| lut.info(t.variant).avg_remaining_ns(t.next_layer)),
                predicted_backlog_ns: node
                    .estimated_backlog_ns(|t| predictor.remaining_ns(t, lut.info(t.variant))),
                busy_ns: node.busy_ns(),
            })
            .collect();
        let target = dispatcher.dispatch(request, &views, &lut);
        assert!(
            target < nodes.len(),
            "dispatcher `{}` returned out-of-range node {target}",
            dispatcher.name()
        );
        let scale = config.nodes[target].scale_for(request.spec.model.family());
        nodes[target].enqueue_scaled(request, workload.trace_for(request), scale);
        routed[target] += 1;
    }

    for node in &mut nodes {
        node.run_to_completion();
    }

    ClusterReport::new(
        nodes
            .into_iter()
            .zip(&config.nodes)
            .zip(routed)
            .map(|((node, nc), routed)| NodeReport {
                node_id: node.id(),
                accelerator: nc.accelerator,
                routed,
                busy_ns: node.busy_ns(),
                report: node.into_report(),
            })
            .collect(),
    )
}
