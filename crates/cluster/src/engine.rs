//! The cluster event loop: N node engines behind one dispatcher, fed by
//! the serving front-end (admission batching, work stealing, request
//! migration).

use std::collections::VecDeque;

use dysta_core::{ModelInfoLut, SparseLatencyPredictor};
use dysta_sim::NodeEngine;
use dysta_workload::{Request, Workload};

use crate::dispatch::{Dispatcher, NodeView};
use crate::report::{ClusterReport, NodeReport, ServingStats};
use crate::{ClusterConfig, FrontendConfig};

/// Replays `workload` on a cluster of nodes behind `dispatcher`,
/// honouring the pool's [`FrontendConfig`].
///
/// Causality: before any front-end action at sim-time `t` (batch
/// dispatch, steal check, rebalance pass), every node is advanced up to
/// `t` ([`NodeEngine::run_until`]), so decisions see exactly the queue
/// states a real front-end could have observed at that instant.
///
/// The default front-end dispatches each request the moment it arrives
/// (admission batch 1, no timer, stealing and migration off) — the
/// historical `simulate_cluster` behavior, and bit-exact with
/// [`dysta_sim::simulate`] on a 1-node pool. With batching enabled,
/// requests queue at the front-end and are dispatched `k` at a time (or
/// when the admission timer fires); with stealing/migration enabled,
/// periodic passes move queued, never-started requests between nodes.
///
/// Deterministic: identical inputs produce identical reports.
///
/// # Panics
///
/// Panics if the workload is empty, the front-end knobs are out of range,
/// or the dispatcher returns an out-of-range node index.
///
/// # Examples
///
/// ```
/// use dysta_cluster::{simulate_cluster, AcceleratorKind, ClusterConfig, DispatchPolicy};
/// use dysta_core::Policy;
/// use dysta_workload::{Scenario, WorkloadBuilder};
///
/// let w = WorkloadBuilder::new(Scenario::MultiCnn)
///     .num_requests(40)
///     .samples_per_variant(4)
///     .seed(1)
///     .build();
/// let pool = ClusterConfig::homogeneous(4, AcceleratorKind::EyerissV2, Policy::Dysta);
/// let report = simulate_cluster(&w, DispatchPolicy::JoinShortestQueue.build().as_mut(), &pool);
/// assert_eq!(report.completed_total(), 40);
/// ```
pub fn simulate_cluster(
    workload: &Workload,
    dispatcher: &mut dyn Dispatcher,
    config: &ClusterConfig,
) -> ClusterReport {
    let requests = workload.requests();
    assert!(!requests.is_empty(), "workload must contain requests");
    config.frontend.validate();
    // The front-end indexes requests by id for re-dispatch; a workload
    // assembled with non-dense ids would silently mis-account waits and
    // migrations, so this is a hard precondition (O(n), once per run).
    assert!(
        requests.iter().enumerate().all(|(i, r)| r.id == i as u64),
        "cluster front-end requires dense request ids 0..len"
    );

    let lut = ModelInfoLut::from_store(workload.store());
    let predictor = SparseLatencyPredictor::default();
    let nodes: Vec<NodeEngine<'_>> = config
        .nodes
        .iter()
        .enumerate()
        .map(|(id, nc)| NodeEngine::new(id, nc.policy.build_with(nc.dysta), nc.engine, lut.clone()))
        .collect();

    let mut frontend = Frontend {
        workload,
        requests,
        config,
        dispatcher,
        lut,
        predictor,
        nodes,
        routed: vec![0; config.nodes.len()],
        transferred_in: vec![0; config.nodes.len()],
        transferred_out: vec![0; config.nodes.len()],
        admission_wait_ns: vec![0; requests.len()],
        migration_count: vec![0; requests.len()],
        steals: 0,
        migrations: 0,
    };
    frontend.run();
    frontend.into_report()
}

/// Event kinds, in processing priority at equal timestamps: arrivals
/// join the admission queue before the queue flushes, dispatch happens
/// before rebalancing, and migration (which needs backlogged *and*
/// underloaded nodes) runs before stealing (which needs idle ones).
const EV_ARRIVAL: u8 = 0;
const EV_DISPATCH: u8 = 1;
const EV_MIGRATE: u8 = 2;
const EV_STEAL: u8 = 3;

struct Frontend<'w, 'c> {
    workload: &'w Workload,
    requests: &'w [Request],
    config: &'c ClusterConfig,
    dispatcher: &'c mut dyn Dispatcher,
    lut: ModelInfoLut,
    predictor: SparseLatencyPredictor,
    nodes: Vec<NodeEngine<'w>>,
    routed: Vec<usize>,
    transferred_in: Vec<usize>,
    transferred_out: Vec<usize>,
    admission_wait_ns: Vec<u64>,
    migration_count: Vec<u32>,
    steals: u64,
    migrations: u64,
}

impl<'w> Frontend<'w, '_> {
    fn run(&mut self) {
        let fe: FrontendConfig = self.config.frontend;
        let mut next_arrival = 0usize;
        let mut queue: VecDeque<u64> = VecDeque::new();
        // Set when the admission timer is armed: oldest queued arrival
        // plus the admission interval.
        let mut timer_deadline: Option<u64> = None;
        let mut next_migration = fe.migration.map(|m| m.period_ns);
        let mut next_steal = fe.steal.map(|s| s.period_ns);

        // Phase 1: drain the arrival stream through the admission queue,
        // interleaving steal/migration ticks at their configured cadence.
        while next_arrival < self.requests.len() || !queue.is_empty() {
            let arrival = self.requests.get(next_arrival).map(|r| r.arrival_ns);
            let deadline = if queue.is_empty() {
                None
            } else if arrival.is_none() && timer_deadline.is_none() {
                // No more arrivals can ever fill the batch: flush the
                // remainder at its newest (= the stream's last) arrival.
                Some(self.requests[self.requests.len() - 1].arrival_ns)
            } else {
                timer_deadline
            };

            let (t, kind) = [
                arrival.map(|t| (t, EV_ARRIVAL)),
                deadline.map(|t| (t, EV_DISPATCH)),
                next_migration.map(|t| (t, EV_MIGRATE)),
                next_steal.map(|t| (t, EV_STEAL)),
            ]
            .into_iter()
            .flatten()
            .min()
            .expect("an arrival or a flush deadline always exists");

            match kind {
                EV_ARRIVAL => {
                    if queue.is_empty() && fe.admit_interval_ns > 0 {
                        timer_deadline = Some(t + fe.admit_interval_ns);
                    }
                    queue.push_back(self.requests[next_arrival].id);
                    next_arrival += 1;
                    if queue.len() >= fe.admit_batch {
                        self.dispatch_batch(&mut queue, t);
                        timer_deadline = None;
                    }
                }
                EV_DISPATCH => {
                    self.dispatch_batch(&mut queue, t);
                    timer_deadline = None;
                }
                EV_MIGRATE => next_migration = Some(self.rebalance_tick(EV_MIGRATE, t)),
                EV_STEAL => next_steal = Some(self.rebalance_tick(EV_STEAL, t)),
                _ => unreachable!(),
            }
        }

        // Phase 2: every request is placed; keep rebalancing at the tick
        // cadence until the pool drains (idle nodes may still steal the
        // tail of a backlogged peer's queue).
        if fe.steal.is_some() || fe.migration.is_some() {
            while self.nodes.iter().any(|n| !n.is_drained()) {
                let (t, kind) = [
                    next_migration.map(|t| (t, EV_MIGRATE)),
                    next_steal.map(|t| (t, EV_STEAL)),
                ]
                .into_iter()
                .flatten()
                .min()
                .expect("phase 2 only runs with a tick configured");
                if kind == EV_MIGRATE {
                    next_migration = Some(self.rebalance_tick(EV_MIGRATE, t));
                } else {
                    next_steal = Some(self.rebalance_tick(EV_STEAL, t));
                }
            }
        }
        for node in &mut self.nodes {
            node.run_to_completion();
        }
    }

    /// One migrate or steal tick at sim-time `t`: advance the pool,
    /// run the pass, and return the tick's re-armed next deadline.
    fn rebalance_tick(&mut self, kind: u8, t: u64) -> u64 {
        self.sync_nodes(t);
        let fe = self.config.frontend;
        if kind == EV_MIGRATE {
            self.migration_pass(t);
            t + fe.migration.expect("tick implies config").period_ns
        } else {
            self.steal_pass(t);
            t + fe.steal.expect("tick implies config").period_ns
        }
    }

    /// Advances every node up to sim-time `t` so front-end observations
    /// are causal.
    fn sync_nodes(&mut self, t: u64) {
        for node in &mut self.nodes {
            node.run_until(t);
        }
    }

    /// One causal snapshot of every node, in node-id order.
    fn views(&self) -> Vec<NodeView> {
        self.nodes
            .iter()
            .zip(&self.config.nodes)
            .map(|(node, nc)| NodeView {
                id: node.id(),
                accelerator: nc.accelerator,
                now_ns: node.now_ns(),
                queue_len: node.queue_len(),
                lut_backlog_ns: node.estimated_backlog_ns(|t| {
                    self.lut.info(t.variant).avg_remaining_ns(t.next_layer)
                }),
                predicted_backlog_ns: node.estimated_backlog_ns(|t| {
                    self.predictor.remaining_ns(t, self.lut.info(t.variant))
                }),
                busy_ns: node.busy_ns(),
            })
            .collect()
    }

    /// LUT-estimated backlog of every node — the estimate the steal and
    /// migration passes balance on.
    fn lut_backlogs(&self) -> Vec<f64> {
        self.nodes
            .iter()
            .map(|node| {
                node.estimated_backlog_ns(|t| {
                    self.lut.info(t.variant).avg_remaining_ns(t.next_layer)
                })
            })
            .collect()
    }

    /// One causal snapshot of the pool plus the per-node LUT backlogs
    /// derived from it (the estimate the rebalance passes compare on).
    fn snapshot(&self) -> (Vec<NodeView>, Vec<f64>) {
        let views = self.views();
        let backlogs = views.iter().map(|v| v.lut_backlog_ns).collect();
        (views, backlogs)
    }

    /// Panics when the dispatcher returned an out-of-range node index.
    fn check_target(&self, target: usize) {
        assert!(
            target < self.nodes.len(),
            "dispatcher `{}` returned out-of-range node {target}",
            self.dispatcher.name()
        );
    }

    /// Routes one request through the dispatcher against fresh causal
    /// views, validating the returned node index.
    fn route(&mut self, request: &Request) -> usize {
        let views = self.views();
        let target = self.dispatcher.dispatch(request, &views, &self.lut);
        self.check_target(target);
        target
    }

    /// Flushes the admission queue at sim-time `t`: routes every queued
    /// request in arrival order, recomputing node views between requests
    /// so one batch spreads over the pool instead of dog-piling the
    /// momentarily-emptiest node. Execution is floored at `t` — a
    /// request held back by admission batching cannot start before the
    /// instant it was dispatched, so the recorded admission wait is real
    /// delay, not bookkeeping.
    fn dispatch_batch(&mut self, queue: &mut VecDeque<u64>, t: u64) {
        self.sync_nodes(t);
        let requests = self.requests;
        while let Some(id) = queue.pop_front() {
            let request = &requests[id as usize];
            let target = self.route(request);
            let scale = self.config.nodes[target].scale_for(request.spec.model.family());
            self.nodes[target].enqueue_scaled_at(
                request,
                self.workload.trace_for(request),
                scale,
                t,
            );
            self.routed[target] += 1;
            self.admission_wait_ns[id as usize] = t - request.arrival_ns;
        }
    }

    /// The periodic rebalance: nodes whose backlog estimate exceeds the
    /// configured multiple of the pool mean get their queued,
    /// never-started requests re-offered to the dispatcher; a request
    /// moves when the dispatcher now routes it to a strictly
    /// less-backlogged node and its migration budget allows. Candidates
    /// are evaluated through the read-only [`Dispatcher::peek`] path —
    /// only an applied move charges stateful policies, so a pass that
    /// moves nothing cannot perturb how subsequent arrivals are routed.
    fn migration_pass(&mut self, t: u64) {
        let cfg = self.config.frontend.migration.expect("pass implies config");
        let n = self.nodes.len();
        let requests = self.requests;
        // Node snapshots (and the LUT backlogs derived from them) stay
        // valid across rejected candidates (peek is read-only); only an
        // applied move invalidates them.
        let (mut views, mut backlogs) = self.snapshot();
        for src in 0..n {
            // Candidates in arrival order (the active list's order is
            // arbitrary), frozen before any movement from this node.
            let mut candidates: Vec<(u64, u64)> = self.nodes[src]
                .unstarted_tasks()
                .map(|(task, _)| (task.arrival_ns, task.id))
                .collect();
            candidates.sort_unstable();
            for (_, id) in candidates {
                let mean = backlogs.iter().sum::<f64>() / n as f64;
                if mean <= 0.0 || backlogs[src] <= cfg.min_imbalance * mean {
                    break; // src is no longer behind.
                }
                if self.migration_count[id as usize] >= cfg.max_per_request {
                    continue;
                }
                let request = &requests[id as usize];
                let target = self.dispatcher.peek(request, &views, &self.lut);
                self.check_target(target);
                if target == src || backlogs[target] >= backlogs[src] {
                    continue;
                }
                // The move is real: charge the dispatcher's state from
                // the same snapshot the decision was made on.
                let charged = self.dispatcher.dispatch(request, &views, &self.lut);
                assert_eq!(
                    charged,
                    target,
                    "dispatcher `{}` peek/dispatch disagree on one snapshot",
                    self.dispatcher.name()
                );
                let dst_scale = self.config.nodes[target].scale_for(request.spec.model.family());
                let transfer = self.nodes[src]
                    .take_unstarted(id)
                    .expect("candidate is queued and unstarted");
                self.nodes[target].accept_transfer(transfer, dst_scale, t);
                self.transferred_out[src] += 1;
                self.transferred_in[target] += 1;
                self.migration_count[id as usize] += 1;
                self.migrations += 1;
                (views, backlogs) = self.snapshot();
            }
        }
    }

    /// The steal pass: each idle (fully drained) node pulls the best
    /// queued, never-started request from the most-backlogged peer,
    /// provided the pool is imbalanced enough and the move finishes the
    /// request sooner than the victim's whole backlog would take.
    fn steal_pass(&mut self, t: u64) {
        let cfg = self.config.frontend.steal.expect("pass implies config");
        let n = self.nodes.len();
        // Backlogs stay valid across thieves that steal nothing; only an
        // applied transfer invalidates them.
        let mut backlogs = self.lut_backlogs();
        for thief in 0..n {
            if !self.nodes[thief].is_drained() {
                continue;
            }
            let mean = backlogs.iter().sum::<f64>() / n as f64;
            if mean <= 0.0 {
                break; // Nothing queued anywhere.
            }
            // Most-backlogged peer holding stealable work; smaller id on
            // ties.
            let Some(victim) = (0..n)
                .filter(|&v| v != thief && self.nodes[v].unstarted_tasks().next().is_some())
                .max_by(|&a, &b| backlogs[a].total_cmp(&backlogs[b]).then(b.cmp(&a)))
            else {
                continue;
            };
            if backlogs[victim] < cfg.min_imbalance * mean {
                continue;
            }
            // Best candidate: the request whose move frees the most
            // victim time net of what the thief pays (ties: bigger
            // victim-side estimate, then smaller id). Only requests the
            // thief finishes sooner than the victim's whole backlog
            // qualify — stealing must never extend the tail.
            let mut best: Option<(f64, f64, u64)> = None;
            for (task, victim_scale) in self.nodes[victim].unstarted_tasks() {
                let est_ns = self.lut.info(task.variant).avg_latency_ns();
                let thief_scale = self.config.nodes[thief].scale_for(task.spec.model.family());
                let on_victim = est_ns * victim_scale;
                let on_thief = est_ns * thief_scale;
                if on_thief >= backlogs[victim] {
                    continue;
                }
                let gain = on_victim - on_thief;
                let better = match &best {
                    None => true,
                    Some((bg, bv, bid)) => match gain.total_cmp(bg) {
                        std::cmp::Ordering::Greater => true,
                        std::cmp::Ordering::Equal => match on_victim.total_cmp(bv) {
                            std::cmp::Ordering::Greater => true,
                            std::cmp::Ordering::Equal => task.id < *bid,
                            std::cmp::Ordering::Less => false,
                        },
                        std::cmp::Ordering::Less => false,
                    },
                };
                if better {
                    best = Some((gain, on_victim, task.id));
                }
            }
            let Some((_, _, id)) = best else {
                continue;
            };
            let family = self.requests[id as usize].spec.model.family();
            let scale = self.config.nodes[thief].scale_for(family);
            let transfer = self.nodes[victim]
                .take_unstarted(id)
                .expect("chosen candidate is queued and unstarted");
            self.nodes[thief].accept_transfer(transfer, scale, t);
            self.transferred_out[victim] += 1;
            self.transferred_in[thief] += 1;
            self.steals += 1;
            backlogs = self.lut_backlogs();
        }
    }

    fn into_report(self) -> ClusterReport {
        let Frontend {
            nodes,
            config,
            routed,
            transferred_in,
            transferred_out,
            admission_wait_ns,
            migration_count,
            steals,
            migrations,
            ..
        } = self;
        let serving = ServingStats {
            steals,
            migrations,
            max_migrations_single_request: migration_count.iter().copied().max().unwrap_or(0),
            admission_wait_ns,
        };
        ClusterReport::with_serving(
            nodes
                .into_iter()
                .zip(&config.nodes)
                .enumerate()
                .map(|(i, (node, nc))| NodeReport {
                    node_id: node.id(),
                    accelerator: nc.accelerator,
                    routed: routed[i],
                    transferred_in: transferred_in[i],
                    transferred_out: transferred_out[i],
                    busy_ns: node.busy_ns(),
                    report: node.into_report(),
                })
                .collect(),
            serving,
        )
    }
}
