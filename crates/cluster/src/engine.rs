//! The cluster event loop: N node engines behind one [`ClusterPolicy`],
//! fed by the serving front-end (admission batching, work stealing,
//! request migration).
//!
//! The loop only *sequences*: it advances nodes causally, snapshots the
//! pool into a [`DispatchContext`], consults the policy family
//! (dispatcher for routing, [`crate::StealPolicy`] for victim choice,
//! [`crate::MigrationPolicy`] for rebalance acceptance), and applies
//! whatever they decide — charging the pool's
//! [`crate::TransferCostConfig`] on every applied move. All decision
//! logic lives behind the policy traits.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use dysta_core::{scale_ns, ModelInfoLut, SparseLatencyPredictor};
use dysta_models::ModelFamily;
use dysta_obs::{EventKind, NullTracer, Phase, TraceEvent, Tracer, NODE_FRONTEND, REQ_NONE};
use dysta_sim::NodeEngine;
use dysta_workload::{Request, RequestSource, Workload, WorkloadSource};

use crate::dispatch::{DispatchContext, Dispatcher, EarliestDeadlineFirst, NodeView};
use crate::faults::{FaultKind, FaultSchedule, NodeHealth, RecoveryStats};
use crate::policy::{
    AdmissionDecision, AdmissionPolicy, AdmitAll, BacklogGainSteal, BacklogThresholdMigration,
    ClusterPolicy, InfeasibleEverywhere, MigrationPolicy, StealCandidate, StealPolicy,
};
use crate::report::{ClusterReport, NodeReport, ServingStats};
use crate::{ClusterConfig, FrontendConfig};
use threadpool::ThreadPool;

/// A node engine with a boxed scheduler — the element type of the
/// cluster's node list, and what [`ClusterTracer::advance_nodes`]
/// steps.
pub type ClusterNode<'w, T> = NodeEngine<'w, Box<dyn dysta_core::Scheduler>, T>;

/// Tracer capability for the cluster engine: how the advance phase may
/// step the live set between two front-end events.
///
/// The default is the historical sequential loop, correct for every
/// tracer. [`NullTracer`] (the untraced path every experiment binary
/// runs) opts into the *sharded* advance: node stepping is resumable on
/// a causal per-node clock and touches no shared state, so live nodes
/// advance concurrently on the pool and the barrier at the end of
/// [`ThreadPool::scope`] re-serializes before the front-end observes
/// anything. Completion merging stays where it always was — the
/// sequential [`Frontend::prune_live`] walk in ascending node order —
/// so reports are bit-exact with the sequential loop by construction.
///
/// By-reference tracers (`&RingTracer`) keep the sequential default:
/// they are not `Sync`, and sequential advance also preserves the
/// recorded event order.
pub trait ClusterTracer: Tracer + Copy {
    /// True when this tracer permits the sharded (parallel) advance;
    /// the engine only constructs a pool when this holds.
    const PARALLEL: bool = false;

    /// Advances every node in `live` (ascending node ids) up to
    /// sim-time `t`. Implementations must be observationally identical
    /// to the sequential loop: each node ends at the exact state
    /// `run_until(t)` produces, and nothing else may be touched.
    fn advance_nodes<'w>(
        pool: Option<&ThreadPool>,
        nodes: &mut [ClusterNode<'w, Self>],
        live: &[usize],
        t: u64,
    ) {
        let _ = pool;
        for &id in live {
            nodes[id].run_until(t);
        }
    }
}

impl ClusterTracer for NullTracer {
    const PARALLEL: bool = true;

    fn advance_nodes<'w>(
        pool: Option<&ThreadPool>,
        nodes: &mut [ClusterNode<'w, Self>],
        live: &[usize],
        t: u64,
    ) {
        let pool = match pool {
            // One live node parallelizes nothing; skip the scope.
            Some(pool) if live.len() >= 2 => pool,
            _ => {
                for &id in live {
                    nodes[id].run_until(t);
                }
                return;
            }
        };
        // Split the node slice into disjoint `&mut` references for the
        // live ids (ascending, so one forward walk suffices).
        let mut refs: Vec<&mut ClusterNode<'w, Self>> = Vec::with_capacity(live.len());
        let mut rest = &mut nodes[..];
        let mut offset = 0;
        for &id in live {
            let (_, tail) = rest.split_at_mut(id - offset);
            let (node, tail) = tail.split_first_mut().expect("live id in range");
            refs.push(node);
            rest = tail;
            offset = id + 1;
        }
        pool.scope(|s| {
            for node in refs {
                s.spawn(move || node.run_until(t));
            }
        });
    }
}

// By-reference tracers advance sequentially (see trait docs).
impl<T: Tracer + ?Sized> ClusterTracer for &T {}

// The sharded advance moves `&mut ClusterNode` across threads; keep the
// Send-ability of the untraced node engine pinned at compile time so a
// non-Send field can never silently reach the parallel path.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ClusterNode<'static, NullTracer>>();
};

/// Replays `workload` on a cluster of nodes behind `dispatcher` with the
/// default admission ([`AdmitAll`]), steal, and migration policies,
/// honouring the pool's [`FrontendConfig`].
///
/// Causality: before any front-end action at sim-time `t` (batch
/// dispatch, steal check, rebalance pass), every node is advanced up to
/// `t` ([`NodeEngine::run_until`]), so decisions see exactly the queue
/// states a real front-end could have observed at that instant.
///
/// The default front-end dispatches each request the moment it arrives
/// (admission batch 1, no timer, stealing and migration off) — the
/// historical `simulate_cluster` behavior, and bit-exact with
/// [`dysta_sim::simulate`] on a 1-node pool. With batching enabled,
/// requests queue at the front-end and are dispatched `k` at a time (or
/// when the admission timer fires); with stealing/migration enabled,
/// periodic passes move queued, never-started requests between nodes,
/// each move paying the configured transfer cost on the receiving node.
///
/// Deterministic: identical inputs produce identical reports.
///
/// # Panics
///
/// Panics if the workload is empty, any config knob is out of range
/// ([`ClusterConfig::validate`]), or the dispatcher returns an
/// out-of-range node index.
///
/// # Examples
///
/// ```
/// use dysta_cluster::{simulate_cluster, AcceleratorKind, ClusterConfig, DispatchPolicy};
/// use dysta_core::Policy;
/// use dysta_workload::{Scenario, WorkloadBuilder};
///
/// let w = WorkloadBuilder::new(Scenario::MultiCnn)
///     .num_requests(40)
///     .samples_per_variant(4)
///     .seed(1)
///     .build();
/// let pool = ClusterConfig::homogeneous(4, AcceleratorKind::EyerissV2, Policy::Dysta);
/// let report = simulate_cluster(&w, DispatchPolicy::JoinShortestQueue.build().as_mut(), &pool);
/// assert_eq!(report.completed_total(), 40);
/// ```
pub fn simulate_cluster(
    workload: &Workload,
    dispatcher: &mut dyn Dispatcher,
    config: &ClusterConfig,
) -> ClusterReport {
    run_cluster(
        workload,
        dispatcher,
        &AdmitAll::new(),
        &BacklogGainSteal::new(),
        &BacklogThresholdMigration::new(),
        config,
        NullTracer,
    )
}

/// Replays `workload` under a full [`ClusterPolicy`] bundle — custom
/// admission, steal, and migration policies next to the dispatcher.
/// Semantics are identical to [`simulate_cluster`], which is this
/// function applied to the default bundle. With a non-default
/// [`AdmissionPolicy`] the pool may complete fewer requests than the
/// workload carries: rejected requests never enter any node engine,
/// and no steal or migration pass can resurrect them.
///
/// # Panics
///
/// As [`simulate_cluster`].
pub fn simulate_cluster_with(
    workload: &Workload,
    policy: &mut ClusterPolicy,
    config: &ClusterConfig,
) -> ClusterReport {
    run_cluster(
        workload,
        policy.dispatcher.as_mut(),
        policy.admission.as_ref(),
        policy.steal.as_ref(),
        policy.migration.as_ref(),
        config,
        NullTracer,
    )
}

/// [`simulate_cluster_with`] with observability: every node engine and
/// the front-end report to `tracer` (pass `&RingTracer` to record) —
/// arrivals, admission decisions, dispatches, execution segments,
/// preemptions, steal/migration traffic, per-node slack re-projections
/// at every rebalance tick, and completions.
///
/// With the same inputs the returned report is identical to
/// [`simulate_cluster_with`]'s — tracing observes the run without
/// perturbing it (pinned by tests).
///
/// # Panics
///
/// As [`simulate_cluster`].
///
/// # Examples
///
/// ```
/// use dysta_cluster::{simulate_cluster_traced, ClusterConfig, ClusterPolicy};
/// use dysta_cluster::{AcceleratorKind, DispatchPolicy};
/// use dysta_core::Policy;
/// use dysta_obs::RingTracer;
/// use dysta_workload::{Scenario, WorkloadBuilder};
///
/// let w = WorkloadBuilder::new(Scenario::MultiCnn)
///     .num_requests(20)
///     .samples_per_variant(4)
///     .seed(1)
///     .build();
/// let pool = ClusterConfig::homogeneous(2, AcceleratorKind::EyerissV2, Policy::Dysta);
/// let tracer = RingTracer::new(1 << 14);
/// let mut policy = ClusterPolicy::from_dispatch(DispatchPolicy::LeastLoaded);
/// let report = simulate_cluster_traced(&w, &mut policy, &pool, &tracer);
/// assert_eq!(report.completed_total(), 20);
/// assert!(tracer.validate().is_ok());
/// ```
pub fn simulate_cluster_traced<T: ClusterTracer>(
    workload: &Workload,
    policy: &mut ClusterPolicy,
    config: &ClusterConfig,
    tracer: T,
) -> ClusterReport {
    run_cluster(
        workload,
        policy.dispatcher.as_mut(),
        policy.admission.as_ref(),
        policy.steal.as_ref(),
        policy.migration.as_ref(),
        config,
        tracer,
    )
}

fn run_cluster<T: ClusterTracer>(
    workload: &Workload,
    dispatcher: &mut dyn Dispatcher,
    admission_policy: &dyn AdmissionPolicy,
    steal_policy: &dyn StealPolicy,
    migration_policy: &dyn MigrationPolicy,
    config: &ClusterConfig,
    tracer: T,
) -> ClusterReport {
    let requests = workload.requests();
    assert!(!requests.is_empty(), "workload must contain requests");
    // Every range invariant — node knobs, front-end, transfer cost — is
    // checked once here, so hand-assembled configs cannot reach the
    // engine unvalidated.
    config.validate();
    // A streaming source owns its id minting (the RequestSource
    // contract), but a hand-assembled workload slice does not — reject
    // non-dense ids here so a workload built with gaps or duplicates
    // cannot silently mis-account waits and migrations (O(n), once).
    assert!(
        requests.iter().enumerate().all(|(i, r)| r.id == i as u64),
        "cluster front-end requires dense request ids 0..len"
    );
    run_cluster_source(
        WorkloadSource::new(workload),
        dispatcher,
        admission_policy,
        steal_policy,
        migration_policy,
        config,
        tracer,
    )
}

/// [`simulate_cluster`] over any [`RequestSource`]: the workload
/// arrives as a stream instead of a materialized slice, so an
/// open-loop [`dysta_workload::ArrivalSource`] can drive
/// million-request runs while the front-end holds only live state
/// (admission queue + in-flight bookkeeping — see
/// [`ServingStats::peak_live_requests`]).
///
/// Over a [`WorkloadSource`] this is exactly [`simulate_cluster`]
/// (bit-pinned by the golden fixtures, which now run through this
/// path).
///
/// # Panics
///
/// Panics if the stream is empty, any config knob is out of range, or
/// the dispatcher returns an out-of-range node index.
///
/// # Examples
///
/// ```
/// use dysta_cluster::{simulate_cluster_stream, AcceleratorKind, ClusterConfig, DispatchPolicy};
/// use dysta_core::Policy;
/// use dysta_workload::{Scenario, StreamSpec};
///
/// let spec = StreamSpec::steady_poisson(Scenario::MultiCnn, 3.0, 10.0)
///     .num_requests(40)
///     .samples_per_variant(4)
///     .seed(1);
/// let store = spec.build_store();
/// let pool = ClusterConfig::homogeneous(4, AcceleratorKind::EyerissV2, Policy::Dysta);
/// let report = simulate_cluster_stream(
///     spec.source(&store),
///     DispatchPolicy::JoinShortestQueue.build().as_mut(),
///     &pool,
/// );
/// assert_eq!(report.completed_total(), 40);
/// ```
pub fn simulate_cluster_stream<'w, S: RequestSource<'w>>(
    source: S,
    dispatcher: &mut dyn Dispatcher,
    config: &ClusterConfig,
) -> ClusterReport {
    run_cluster_source(
        source,
        dispatcher,
        &AdmitAll::new(),
        &BacklogGainSteal::new(),
        &BacklogThresholdMigration::new(),
        config,
        NullTracer,
    )
}

/// [`simulate_cluster_with`] over any [`RequestSource`] — the full
/// policy bundle against a streaming workload.
///
/// # Panics
///
/// As [`simulate_cluster_stream`].
pub fn simulate_cluster_stream_with<'w, S: RequestSource<'w>>(
    source: S,
    policy: &mut ClusterPolicy,
    config: &ClusterConfig,
) -> ClusterReport {
    run_cluster_source(
        source,
        policy.dispatcher.as_mut(),
        policy.admission.as_ref(),
        policy.steal.as_ref(),
        policy.migration.as_ref(),
        config,
        NullTracer,
    )
}

fn run_cluster_source<'w, S, T>(
    mut source: S,
    dispatcher: &mut dyn Dispatcher,
    admission_policy: &dyn AdmissionPolicy,
    steal_policy: &dyn StealPolicy,
    migration_policy: &dyn MigrationPolicy,
    config: &ClusterConfig,
    tracer: T,
) -> ClusterReport
where
    S: RequestSource<'w>,
    T: ClusterTracer,
{
    assert!(
        source.peek_arrival_ns().is_some(),
        "workload must contain requests"
    );
    config.validate();
    let len_hint = source.len_hint();

    // The pool exists only when the tracer permits the sharded advance
    // AND more than one thread is requested; otherwise `pool` is `None`
    // and every advance takes the sequential loop. `new(1)` would also
    // be sequential, but skipping construction keeps the 1-thread path
    // free of pool plumbing entirely.
    let threads = config.resolved_threads();
    let pool = (T::PARALLEL && threads >= 2).then(|| ThreadPool::new(threads));

    let lut = ModelInfoLut::from_store(source.store());
    let lut_len = lut.len();
    let predictor = SparseLatencyPredictor::default();
    let nodes: Vec<NodeEngine<'_, Box<dyn dysta_core::Scheduler>, T>> = config
        .nodes
        .iter()
        .enumerate()
        .map(|(id, nc)| {
            if tracer.enabled() {
                let mut name = String::new();
                use std::fmt::Write as _;
                write!(name, "node{id} {:?}", nc.accelerator).expect("write to String");
                tracer.name_node(id as u32, &name);
            }
            NodeEngine::with_tracer(
                id,
                nc.policy.build_with(nc.dysta),
                nc.engine,
                lut.clone(),
                tracer,
            )
        })
        .collect();

    let mut frontend = Frontend {
        source,
        config,
        dispatcher,
        admission_policy,
        steal_policy,
        migration_policy,
        lut,
        predictor,
        nodes,
        routed: vec![0; config.nodes.len()],
        rejected: vec![0; config.nodes.len()],
        degraded: vec![0; config.nodes.len()],
        transferred_in: vec![0; config.nodes.len()],
        transferred_out: vec![0; config.nodes.len()],
        transfer_fetch_ns: vec![0; config.nodes.len()],
        admission_wait_ns: Vec::with_capacity(len_hint),
        rejected_ids: Vec::new(),
        degraded_slo_ns: Vec::new(),
        live_requests: HashMap::new(),
        peak_live: 0,
        max_migrations: 0,
        last_arrival_ns: 0,
        completed_seen: vec![0; config.nodes.len()],
        steals: 0,
        migrations: 0,
        health: vec![HealthState::default(); config.nodes.len()],
        fault_timeline: expand_schedule(&config.faults.schedule),
        next_fault: 0,
        failed: vec![0; config.nodes.len()],
        reneged: vec![0; config.nodes.len()],
        recovery: RecoveryStats::default(),
        live: Vec::new(),
        view_cache: Vec::new(),
        view_epoch: vec![u64::MAX; config.nodes.len()],
        tracer,
        labels: vec![None; lut_len],
        scratch: String::new(),
        pool,
    };
    frontend.run();
    frontend.into_report()
}

/// Event kinds, in processing priority at equal timestamps: arrivals
/// join the admission queue before the queue flushes, fault actions
/// land before the queue flushes (a batch dispatched at crash time must
/// see the post-crash pool), dispatch happens before rebalancing, and
/// migration (which needs backlogged *and* underloaded nodes) runs
/// before stealing (which needs idle ones).
const EV_ARRIVAL: u8 = 0;
const EV_FAULT: u8 = 1;
const EV_DISPATCH: u8 = 2;
const EV_MIGRATE: u8 = 3;
const EV_STEAL: u8 = 4;

/// Number of distinct event kinds (one armed deadline slot each).
const EV_KINDS: usize = 5;

/// The front-end's pending deadlines as a lazily-invalidated binary
/// min-heap over `(t, kind, seq)`.
///
/// At most one deadline per kind is *armed* at a time; re-arming a
/// kind at a new instant pushes a fresh entry and orphans the old one
/// (discarded when it surfaces — its sequence number no longer
/// matches). Because each kind contributes exactly one valid entry,
/// the heap minimum over `(t, kind)` is identical to the historical
/// five-way array minimum — same timestamp, same kind-priority
/// tie-break — so event order (and therefore every report and trace)
/// is bit-exact with the scan it replaces. Arming an unchanged
/// deadline is a no-op, so steady-state iterations touch the heap
/// only for the kinds whose deadline actually moved.
#[derive(Default)]
struct EventQueue {
    heap: BinaryHeap<Reverse<(u64, u8, u64)>>,
    /// `(t, seq)` of the armed entry per kind; `None` = disarmed.
    armed: [Option<(u64, u64)>; EV_KINDS],
    next_seq: u64,
}

impl EventQueue {
    /// Arms `kind` at `t` (disarms it when `t` is `None`). Unchanged
    /// deadlines are no-ops.
    fn arm(&mut self, kind: u8, t: Option<u64>) {
        let slot = &mut self.armed[kind as usize];
        match t {
            None => *slot = None,
            Some(t) => {
                if slot.map(|(at, _)| at) == Some(t) {
                    return;
                }
                let seq = self.next_seq;
                self.next_seq += 1;
                *slot = Some((t, seq));
                self.heap.push(Reverse((t, kind, seq)));
            }
        }
    }

    /// Pops the earliest armed `(t, kind)` (kind-priority tie-break at
    /// equal instants), disarming it. `None` when nothing is armed.
    fn pop(&mut self) -> Option<(u64, u8)> {
        while let Some(&Reverse((t, kind, seq))) = self.heap.peek() {
            self.heap.pop();
            if self.armed[kind as usize] == Some((t, seq)) {
                self.armed[kind as usize] = None;
                return Some((t, kind));
            }
        }
        None
    }
}

/// One applied-at-`t` fault action. A [`FaultSchedule`] entry expands
/// into explicit start/end actions so window closings and transient
/// recoveries replay through the event loop like any other deadline.
#[derive(Debug, Clone, Copy)]
enum FaultAction {
    Down {
        node: usize,
        until_ns: Option<u64>,
    },
    Up {
        node: usize,
    },
    BrownoutStart {
        node: usize,
        factor: f64,
        until_ns: u64,
    },
    BrownoutEnd {
        node: usize,
    },
    StallStart {
        node: usize,
        factor: f64,
        until_ns: u64,
    },
    StallEnd {
        node: usize,
    },
}

/// Expands a validated schedule into a time-sorted action timeline.
/// The sort is stable, so same-instant actions apply in schedule-entry
/// order.
fn expand_schedule(schedule: &FaultSchedule) -> Vec<(u64, FaultAction)> {
    let mut timeline = Vec::new();
    for ev in &schedule.events {
        let node = ev.node;
        match ev.kind {
            FaultKind::Crash => timeline.push((
                ev.at_ns,
                FaultAction::Down {
                    node,
                    until_ns: None,
                },
            )),
            FaultKind::TransientCrash { down_until_ns } => {
                let until_ns = Some(down_until_ns);
                timeline.push((ev.at_ns, FaultAction::Down { node, until_ns }));
                timeline.push((down_until_ns, FaultAction::Up { node }));
            }
            FaultKind::Brownout {
                until_ns,
                capacity_factor,
            } => {
                let factor = capacity_factor;
                timeline.push((
                    ev.at_ns,
                    FaultAction::BrownoutStart {
                        node,
                        factor,
                        until_ns,
                    },
                ));
                timeline.push((until_ns, FaultAction::BrownoutEnd { node }));
            }
            FaultKind::TransferStall { until_ns, factor } => {
                timeline.push((
                    ev.at_ns,
                    FaultAction::StallStart {
                        node,
                        factor,
                        until_ns,
                    },
                ));
                timeline.push((until_ns, FaultAction::StallEnd { node }));
            }
        }
    }
    timeline.sort_by_key(|&(t, _)| t);
    timeline
}

/// The front-end's live fault state for one node. Window ends carry
/// the closing instant so an end action from an *earlier* overlapping
/// window cannot clear a later one (and an expired transient recovery
/// cannot revive a node a permanent crash took down in the meantime).
#[derive(Debug, Clone, Copy, Default)]
struct HealthState {
    down: bool,
    down_until_ns: Option<u64>,
    brownout: Option<(f64, u64)>,
    stall: Option<(f64, u64)>,
}

impl HealthState {
    /// The [`NodeHealth`] policies see, given the node's configured
    /// capacity: a brown-out discounts capacity, a crash dominates.
    fn as_node_health(&self, configured_capacity: f64) -> NodeHealth {
        if self.down {
            NodeHealth::Down {
                until_ns: self.down_until_ns,
            }
        } else if let Some((factor, _)) = self.brownout {
            NodeHealth::Degraded {
                capacity: configured_capacity * factor,
            }
        } else {
            NodeHealth::Up
        }
    }
}

/// One admitted request's front-end bookkeeping, kept only while the
/// request is in flight (inserted at admission, removed when its
/// completion is observed — or immediately on failure/renege). The
/// stored request is the *original* admitted class: salvage, migration,
/// and steal re-dispatch consult it exactly as the historical
/// id-indexed slice did, with degradation applied only at the node.
struct LiveEntry {
    request: Request,
    /// Rebalance moves applied so far (bounded by
    /// [`crate::MigrationConfig::max_per_request`]).
    migrations: u32,
    /// Crash-salvage retries applied so far (bounded by
    /// [`crate::RecoveryConfig::max_retries`]).
    retries: u32,
}

struct Frontend<'w, 'c, S, T> {
    source: S,
    config: &'c ClusterConfig,
    dispatcher: &'c mut dyn Dispatcher,
    admission_policy: &'c dyn AdmissionPolicy,
    steal_policy: &'c dyn StealPolicy,
    migration_policy: &'c dyn MigrationPolicy,
    lut: ModelInfoLut,
    predictor: SparseLatencyPredictor,
    nodes: Vec<NodeEngine<'w, Box<dyn dysta_core::Scheduler>, T>>,
    routed: Vec<usize>,
    rejected: Vec<usize>,
    degraded: Vec<usize>,
    transferred_in: Vec<usize>,
    transferred_out: Vec<usize>,
    transfer_fetch_ns: Vec<u64>,
    admission_wait_ns: Vec<u64>,
    rejected_ids: Vec<u64>,
    degraded_slo_ns: Vec<(u64, u64)>,
    /// In-flight requests keyed by id: admitted but not yet observed
    /// complete. This is the only per-request state the front-end holds,
    /// so memory tracks the pool's backlog, not the trace length.
    live_requests: HashMap<u64, LiveEntry>,
    /// High-water mark of `live_requests` ([`ServingStats::peak_live_requests`]).
    peak_live: usize,
    /// Running max of per-request migration counts
    /// ([`ServingStats::max_migrations_single_request`]).
    max_migrations: u32,
    /// Newest arrival timestamp handed out by the source; once the
    /// stream is exhausted this is the tail-flush deadline.
    last_arrival_ns: u64,
    /// Per-node cursor into [`NodeEngine::completed_since`]: completions
    /// already evicted from `live_requests`.
    completed_seen: Vec<usize>,
    steals: u64,
    migrations: u64,
    /// Live fault state per node, updated by [`Frontend::fault_tick`].
    health: Vec<HealthState>,
    /// The expanded, time-sorted fault action timeline.
    fault_timeline: Vec<(u64, FaultAction)>,
    /// Cursor into `fault_timeline`: the first unapplied action.
    next_fault: usize,
    /// Per-node crash-failure counters ([`NodeReport::failed`]).
    failed: Vec<usize>,
    /// Per-node renege counters ([`NodeReport::reneged`]).
    reneged: Vec<usize>,
    /// The run's recovery accounting ([`ServingStats::recovery`]).
    recovery: RecoveryStats,
    /// Ids of nodes not known to be drained, ascending. A conservative
    /// superset of the truly-busy nodes: entries join when the
    /// front-end hands a node work and leave when [`Frontend::sync_nodes`]
    /// observes them drained. Every per-tick pass walks this set
    /// instead of all N nodes — a drained node's `run_until` is a
    /// no-op and a drained node holds nothing to migrate or steal, so
    /// idle nodes cost nothing.
    live: Vec<usize>,
    /// Cached per-node dispatch views, refreshed lazily by
    /// [`Frontend::refresh_views`]. Empty until the first refresh.
    view_cache: Vec<NodeView>,
    /// The [`NodeEngine::mutation_epoch`] each cached view was computed
    /// at. `u64::MAX` forces a rebuild — fault edits use it, because
    /// node health lives on the front-end, outside the node's epoch.
    view_epoch: Vec<u64>,
    tracer: T,
    /// Interned label id per model variant (lazy; index = variant rank).
    labels: Vec<Option<u32>>,
    /// Reusable label-formatting buffer (steady state allocates nothing).
    scratch: String,
    /// Worker pool for the sharded advance phase; `None` runs every
    /// advance on the caller thread (sequential, the 1-thread path).
    pool: Option<ThreadPool>,
}

impl<'w, S: RequestSource<'w>, T: ClusterTracer> Frontend<'w, '_, S, T> {
    /// The original (pre-degrade) admitted request for a live id.
    /// `Request` is `Copy`, so this hands out an owned value and leaves
    /// `self` free for further mutation.
    fn live_request(&self, id: u64) -> Request {
        self.live_requests
            .get(&id)
            .expect("request is live")
            .request
    }

    /// Interns (once per variant) and returns the label id for a
    /// request's model variant.
    fn label_for(&mut self, request: &Request) -> u32 {
        let variant = self
            .lut
            .variant_id(&request.spec)
            .expect("request uses a profiled variant");
        match self.labels[variant.index()] {
            Some(id) => id,
            None => {
                use std::fmt::Write as _;
                self.scratch.clear();
                write!(self.scratch, "{}", request.spec).expect("write to String");
                let id = self.tracer.intern(&self.scratch);
                self.labels[variant.index()] = Some(id);
                id
            }
        }
    }

    /// Records one per-node queue/backlog re-projection per rebalance
    /// tick (the live signal admission and migration reason from).
    fn record_slack_projections(&self, views: &[NodeView], t: u64) {
        if !self.tracer.enabled() {
            return;
        }
        for view in views {
            self.tracer.record(TraceEvent {
                t_ns: t,
                request: REQ_NONE,
                node: view.id as u32,
                kind: EventKind::SlackProjection,
                a: view.queue_len as u64,
                b: view.lut_backlog_ns as i64,
            });
        }
    }

    fn run(&mut self) {
        let fe: FrontendConfig = self.config.frontend;
        let mut queue: VecDeque<Request> = VecDeque::new();
        // Set when the admission timer is armed: oldest queued arrival
        // plus the admission interval.
        let mut timer_deadline: Option<u64> = None;
        let mut next_migration = fe.migration.map(|m| m.period_ns);
        let mut next_steal = fe.steal.map(|s| s.period_ns);
        let mut events = EventQueue::default();

        // Phase 1: drain the arrival stream through the admission queue,
        // interleaving steal/migration ticks at their configured cadence.
        loop {
            let arrival = self.source.peek_arrival_ns();
            if arrival.is_none() && queue.is_empty() {
                break;
            }
            let deadline = if queue.is_empty() {
                None
            } else if arrival.is_none() && timer_deadline.is_none() {
                // No more arrivals can ever fill the batch: flush the
                // remainder at its newest (= the stream's last) arrival.
                Some(self.last_arrival_ns)
            } else {
                timer_deadline
            };

            events.arm(EV_ARRIVAL, arrival);
            events.arm(EV_FAULT, self.next_fault_deadline());
            events.arm(EV_DISPATCH, deadline);
            events.arm(EV_MIGRATE, next_migration);
            events.arm(EV_STEAL, next_steal);
            let (t, kind) = events
                .pop()
                .expect("an arrival or a flush deadline always exists");

            match kind {
                EV_ARRIVAL => {
                    let request = self
                        .source
                        .next_request()
                        .expect("peeked arrival has a request");
                    debug_assert!(
                        request.arrival_ns >= self.last_arrival_ns,
                        "request sources must yield monotone arrivals"
                    );
                    if queue.is_empty() && fe.admit_interval_ns > 0 {
                        timer_deadline = Some(t + fe.admit_interval_ns);
                    }
                    if self.tracer.enabled() {
                        let label = self.label_for(&request);
                        self.tracer.record(TraceEvent {
                            t_ns: t,
                            request: request.id,
                            node: NODE_FRONTEND,
                            kind: EventKind::Arrival,
                            a: u64::from(label),
                            b: request.slo_ns.min(i64::MAX as u64) as i64,
                        });
                    }
                    self.last_arrival_ns = request.arrival_ns;
                    queue.push_back(request);
                    if queue.len() >= fe.admit_batch {
                        self.dispatch_batch(&mut queue, t);
                        timer_deadline = None;
                    }
                }
                EV_FAULT => self.fault_tick(t),
                EV_DISPATCH => {
                    self.dispatch_batch(&mut queue, t);
                    timer_deadline = None;
                }
                EV_MIGRATE => next_migration = Some(self.rebalance_tick(EV_MIGRATE, t)),
                EV_STEAL => next_steal = Some(self.rebalance_tick(EV_STEAL, t)),
                _ => unreachable!(),
            }
        }

        // Phase 2: every request is placed; keep rebalancing at the tick
        // cadence until the pool drains (idle nodes may still steal the
        // tail of a backlogged peer's queue), and replay any fault
        // actions that outlive the arrival stream — crashes still
        // salvage, windows still close, transient nodes still recover.
        events.arm(EV_ARRIVAL, None);
        events.arm(EV_DISPATCH, None);
        loop {
            self.prune_live();
            let ticking = (fe.steal.is_some() || fe.migration.is_some()) && !self.live.is_empty();
            let fault = self.next_fault_deadline();
            if fault.is_none() && !ticking {
                break;
            }
            events.arm(EV_FAULT, fault);
            events.arm(EV_MIGRATE, if ticking { next_migration } else { None });
            events.arm(EV_STEAL, if ticking { next_steal } else { None });
            let (t, kind) = events
                .pop()
                .expect("a pending fault action or an armed tick exists");
            match kind {
                EV_FAULT => self.fault_tick(t),
                EV_MIGRATE => next_migration = Some(self.rebalance_tick(EV_MIGRATE, t)),
                EV_STEAL => next_steal = Some(self.rebalance_tick(EV_STEAL, t)),
                _ => unreachable!(),
            }
        }
        for node in &mut self.nodes {
            node.run_to_completion();
        }
    }

    /// One migrate or steal tick at sim-time `t`: advance the pool,
    /// run the pass, and return the tick's re-armed next deadline.
    fn rebalance_tick(&mut self, kind: u8, t: u64) -> u64 {
        self.sync_nodes(t);
        // Front-end phase timing starts after the node sync, so node
        // execution (its own pick/execute phases) is not double-counted.
        let t0 = self.tracer.profiling().then(std::time::Instant::now);
        let mut views = std::mem::take(&mut self.view_cache);
        self.refresh_views(&mut views);
        self.record_slack_projections(&views, t);
        let fe = self.config.frontend;
        let next = if kind == EV_MIGRATE {
            self.migration_pass(t, &mut views);
            t + fe.migration.expect("tick implies config").period_ns
        } else {
            self.steal_pass(t, &mut views);
            t + fe.steal.expect("tick implies config").period_ns
        };
        self.view_cache = views;
        if let Some(t0) = t0 {
            self.tracer
                .phase_ns(Phase::Frontend, t0.elapsed().as_nanos() as u64);
        }
        next
    }

    /// Advances every node that may hold work up to sim-time `t` so
    /// front-end observations are causal. Drained nodes are skipped —
    /// their `run_until` is a no-op that leaves the clock untouched
    /// (the dispatch seam re-floors a stale idle clock at the decision
    /// instant), so the skip is bit-exact — and observed-drained nodes
    /// are pruned from the live set on the way out.
    ///
    /// The advance itself dispatches through
    /// [`ClusterTracer::advance_nodes`]: sequential by default, sharded
    /// over the pool for [`NullTracer`] runs with `threads >= 2`. Either
    /// way the barrier lands here — `prune_live` (the deterministic
    /// completion merge, ascending node order) runs after every node
    /// has reached `t`.
    fn sync_nodes(&mut self, t: u64) {
        T::advance_nodes(self.pool.as_ref(), &mut self.nodes, &self.live, t);
        self.prune_live();
    }

    /// Drops every now-drained node from the live set, restoring the
    /// invariant `live == {nodes with unfinished work}` (between
    /// front-end actions the set is a conservative superset), and
    /// evicts every newly observed completion from the live-request
    /// table. Eviction runs on each node sync, so the table tracks the
    /// pool's in-flight backlog rather than the trace length — the
    /// memory contract streaming sources rely on.
    fn prune_live(&mut self) {
        for &node_id in &self.live {
            let node = &self.nodes[node_id];
            let seen = self.completed_seen[node_id];
            if node.completed_count() > seen {
                for completed in node.completed_since(seen) {
                    self.live_requests.remove(&completed.id);
                }
                self.completed_seen[node_id] = node.completed_count();
            }
        }
        let nodes = &self.nodes;
        self.live.retain(|&id| !nodes[id].is_drained());
    }

    /// Marks `node` as holding work (idempotent; keeps `live` sorted).
    fn mark_live(&mut self, node: usize) {
        if let Err(i) = self.live.binary_search(&node) {
            self.live.insert(i, node);
        }
    }

    /// The smallest live node id strictly greater than `prev` (`None`
    /// starts from the beginning). Robust to insertions and removals
    /// between calls — the per-source rebalance loops use it as a
    /// cursor so a node handed work mid-pass is still visited when the
    /// ascending sweep reaches its id, exactly as the historical
    /// `0..n` scan did.
    fn next_live_after(&self, prev: Option<usize>) -> Option<usize> {
        let i = match prev {
            None => 0,
            Some(p) => match self.live.binary_search(&p) {
                Ok(i) => i + 1,
                Err(i) => i,
            },
        };
        self.live.get(i).copied()
    }

    /// The instant of the first unapplied fault action (`None` once the
    /// schedule — empty or not — is fully replayed).
    fn next_fault_deadline(&self) -> Option<u64> {
        self.fault_timeline.get(self.next_fault).map(|&(t, _)| t)
    }

    /// Applies every fault action scheduled at sim-time `t`: crashes
    /// (with salvage-and-redispatch), transient recoveries, and
    /// brown-out / transfer-stall window edges. Nodes are synced first
    /// so a crash sees exactly the queue a real failure would strand.
    fn fault_tick(&mut self, t: u64) {
        self.sync_nodes(t);
        let t0 = self.tracer.profiling().then(std::time::Instant::now);
        while let Some(&(at, action)) = self.fault_timeline.get(self.next_fault) {
            if at != t {
                break;
            }
            self.next_fault += 1;
            self.apply_fault_action(t, action);
        }
        if let Some(t0) = t0 {
            self.tracer
                .phase_ns(Phase::Frontend, t0.elapsed().as_nanos() as u64);
        }
    }

    fn apply_fault_action(&mut self, t: u64, action: FaultAction) {
        // Health lives on the front-end, outside the node engine's
        // mutation epoch: force the touched node's cached view stale
        // so the next refresh re-reads its health (even for the
        // conditional window-end edges — a spurious recompute is
        // value-identical, a missed one is not).
        let touched = match action {
            FaultAction::Down { node, .. }
            | FaultAction::Up { node }
            | FaultAction::BrownoutStart { node, .. }
            | FaultAction::BrownoutEnd { node }
            | FaultAction::StallStart { node, .. }
            | FaultAction::StallEnd { node } => node,
        };
        self.view_epoch[touched] = u64::MAX;
        match action {
            FaultAction::Down { node, until_ns } => self.crash_node(t, node, until_ns),
            FaultAction::Up { node } => {
                // Only the recovery matching the *current* down window
                // may revive the node: a permanent crash (or a longer
                // transient one) taken in the meantime wins.
                let hs = &mut self.health[node];
                if hs.down && hs.down_until_ns == Some(t) {
                    hs.down = false;
                    hs.down_until_ns = None;
                    if self.tracer.enabled() {
                        self.tracer.record(TraceEvent {
                            t_ns: t,
                            request: REQ_NONE,
                            node: node as u32,
                            kind: EventKind::NodeUp,
                            a: 0,
                            b: 0,
                        });
                    }
                }
            }
            FaultAction::BrownoutStart {
                node,
                factor,
                until_ns,
            } => {
                self.health[node].brownout = Some((factor, until_ns));
                self.record_window_edge(t, node, factor, until_ns);
            }
            FaultAction::BrownoutEnd { node } => {
                if self.health[node].brownout.map(|(_, u)| u) == Some(t) {
                    self.health[node].brownout = None;
                    self.record_window_edge(t, node, 1.0, 0);
                }
            }
            FaultAction::StallStart {
                node,
                factor,
                until_ns,
            } => {
                self.health[node].stall = Some((factor, until_ns));
                self.record_window_edge(t, node, factor, until_ns);
            }
            FaultAction::StallEnd { node } => {
                if self.health[node].stall.map(|(_, u)| u) == Some(t) {
                    self.health[node].stall = None;
                    self.record_window_edge(t, node, 1.0, 0);
                }
            }
        }
    }

    /// One [`EventKind::Brownout`] edge: factor in parts-per-million
    /// (1 000 000 = nominal, also the closing edge), window end in `b`.
    fn record_window_edge(&self, t: u64, node: usize, factor: f64, until_ns: u64) {
        if !self.tracer.enabled() {
            return;
        }
        self.tracer.record(TraceEvent {
            t_ns: t,
            request: REQ_NONE,
            node: node as u32,
            kind: EventKind::Brownout,
            a: (factor * 1e6).round() as u64,
            b: until_ns as i64,
        });
    }

    /// Takes `crashed` down at sim-time `t` and salvages its stranded
    /// queue: every request still on the node (queued or mid-run) is
    /// pulled off and re-dispatched to a live peer as a from-scratch
    /// retry — executed work on the dead node is lost
    /// ([`RecoveryStats::lost_busy_ns`]), an in-flight request restarts
    /// from layer 0 elsewhere. A request out of retry budget (or with
    /// salvage disabled, or with no live node left) is recorded as
    /// *failed* — never silently dropped.
    fn crash_node(&mut self, t: u64, crashed: usize, until_ns: Option<u64>) {
        let hs = &mut self.health[crashed];
        hs.down = true;
        hs.down_until_ns = until_ns;
        self.recovery.crashes += 1;
        let salvaged = self.nodes[crashed].crash_salvage();
        self.recovery.lost_busy_ns += salvaged.iter().map(|&(_, lost)| lost).sum::<u64>();
        if self.tracer.enabled() {
            self.tracer.record(TraceEvent {
                t_ns: t,
                request: REQ_NONE,
                node: crashed as u32,
                kind: EventKind::NodeDown,
                a: salvaged.len() as u64,
                b: until_ns.map_or(-1, |u| u.min(i64::MAX as u64) as i64),
            });
        }
        let recovery_cfg = self.config.faults.recovery;
        let mut views = std::mem::take(&mut self.view_cache);
        for (transfer, lost_ns) in salvaged {
            let id = transfer.task().id;
            self.recovery.salvaged += 1;
            if self.tracer.enabled() {
                self.tracer.record(TraceEvent {
                    t_ns: t,
                    request: id,
                    node: crashed as u32,
                    kind: EventKind::Salvage,
                    a: u64::from(self.live_requests[&id].retries),
                    b: lost_ns as i64,
                });
            }
            if !recovery_cfg.salvage || self.live_requests[&id].retries >= recovery_cfg.max_retries
            {
                self.fail_request(t, id, crashed);
                continue;
            }
            // Routing consults the live table's original request; the
            // salvaged task keeps the deadline class it was admitted
            // under (relaxed, if admission degraded it).
            let request = self.live_request(id);
            self.refresh_views(&mut views);
            let ctx = DispatchContext {
                now_ns: t,
                nodes: &views,
                lut: &self.lut,
                transfer_cost: &self.config.transfer_cost,
                reoffer_src: None,
            };
            let target = self.dispatcher.dispatch(&request, &ctx);
            self.check_target(target);
            if !views[target].health.accepts_work() {
                // Every node is down: nothing can host the retry.
                self.fail_request(t, id, crashed);
                continue;
            }
            let fetch_ns =
                self.stalled_fetch(crashed, target, ctx.request_transfer_cost_ns(&request));
            let scale = self.dispatch_scale(target, request.spec.model.family());
            self.nodes[target].accept_transfer(transfer, scale, t, fetch_ns);
            self.mark_live(target);
            self.transferred_out[crashed] += 1;
            self.transferred_in[target] += 1;
            self.transfer_fetch_ns[target] += fetch_ns;
            self.live_requests
                .get_mut(&id)
                .expect("request is live")
                .retries += 1;
            self.recovery.retries += 1;
            if self.tracer.enabled() {
                self.tracer.record(TraceEvent {
                    t_ns: t,
                    request: id,
                    node: target as u32,
                    kind: EventKind::Retry,
                    a: crashed as u64,
                    b: fetch_ns as i64,
                });
            }
        }
        self.view_cache = views;
    }

    /// Records an unsalvageable request against `node`: it stays in the
    /// admitted population ([`NodeReport::routed`]) but never completes,
    /// so conservation closes through [`NodeReport::failed`].
    fn fail_request(&mut self, t: u64, id: u64, node: usize) {
        let entry = self.live_requests.remove(&id);
        self.failed[node] += 1;
        self.recovery.failed += 1;
        self.recovery.failed_ids.push(id);
        if self.tracer.enabled() {
            self.tracer.record(TraceEvent {
                t_ns: t,
                request: id,
                node: node as u32,
                kind: EventKind::Failed,
                a: u64::from(entry.map_or(0, |e| e.retries)),
                b: 0,
            });
        }
    }

    /// The service scale `family` pays when dispatched to `target`
    /// *right now*: the configured [`crate::NodeConfig::effective_scale`]
    /// with capacity discounted by any open brown-out window (bit-exact
    /// with the plain config scale when none is). Work already queued
    /// keeps the scale it was enqueued with — a brown-out prices
    /// dispatches made during the window, it does not re-time the queue.
    fn dispatch_scale(&self, target: usize, family: ModelFamily) -> f64 {
        let nc = &self.config.nodes[target];
        match self.health[target].brownout {
            Some((factor, _)) => crate::config::effective_scale(
                nc.accelerator.serves(family),
                nc.mismatch_slowdown,
                nc.capacity * factor,
            ),
            None => nc.effective_scale(family),
        }
    }

    /// `fetch_ns` inflated by any transfer-stall window covering either
    /// endpoint — the slower side bounds the transfer, so overlapping
    /// stalls take the larger factor. Identity when no window is open.
    fn stalled_fetch(&self, src: usize, dst: usize, fetch_ns: u64) -> u64 {
        let factor = |i: usize| self.health[i].stall.map(|(f, _)| f);
        match (factor(src), factor(dst)) {
            (None, None) => fetch_ns,
            (a, b) => scale_ns(fetch_ns, a.unwrap_or(1.0).max(b.unwrap_or(1.0))),
        }
    }

    /// One causal snapshot of node `i` — computed exactly as the
    /// historical full-pool pass did (same summation order over the
    /// node's queue, so estimates are bit-stable), reading nothing but
    /// this node's state, its config, and its front-end health.
    fn view_of(&self, i: usize) -> NodeView {
        let free_transfers = self.config.transfer_cost.is_free();
        let node = &self.nodes[i];
        let nc = &self.config.nodes[i];
        let mut lut_backlog_ns = 0.0;
        let mut predicted_backlog_ns = 0.0;
        let mut earliest_deadline_ns = u64::MAX;
        let mut total_slack_ns = 0.0;
        let mut cost_sum_ns = 0.0;
        let mut movable = 0usize;
        for (task, scale) in node.queued_tasks() {
            let info = self.lut.info(task.variant);
            let lut_remaining = info.avg_remaining_ns(task.next_layer) * scale;
            lut_backlog_ns += lut_remaining;
            predicted_backlog_ns += self.predictor.remaining_ns(task, info) * scale;
            // A saturated deadline means "no deadline": such a
            // request must not enter the SLO-pressure summaries
            // — folding the u64::MAX sentinel into the slack
            // sum would swamp every real deadline with ~1.8e19
            // of phantom headroom.
            let deadline = task.arrival_ns.saturating_add(task.slo_ns);
            if deadline < u64::MAX {
                earliest_deadline_ns = earliest_deadline_ns.min(deadline);
                total_slack_ns += deadline as f64 - node.now_ns() as f64 - lut_remaining;
            }
            // Only unstarted requests can ever move, so only
            // they enter the node's price signal.
            if !free_transfers && !task.started() {
                cost_sum_ns += self.config.transfer_cost.estimate_ns(info.avg_latency_ns()) as f64;
                movable += 1;
            }
        }
        let transfer_cost_ns = if movable == 0 {
            0
        } else {
            (cost_sum_ns / movable as f64).round() as u64
        };
        NodeView {
            id: node.id(),
            accelerator: nc.accelerator,
            capacity: nc.capacity,
            mismatch_slowdown: nc.mismatch_slowdown,
            now_ns: node.now_ns(),
            queue_len: node.queue_len(),
            lut_backlog_ns,
            predicted_backlog_ns,
            earliest_deadline_ns,
            total_slack_ns,
            transfer_cost_ns,
            busy_ns: node.busy_ns(),
            health: self.health[i].as_node_health(nc.capacity),
        }
    }

    /// Brings `views` up to the current causal snapshot, recomputing
    /// only the nodes whose [`NodeEngine::mutation_epoch`] moved (or
    /// whose cached epoch was force-staled by a fault edit) since the
    /// cached view was taken. Because [`Frontend::view_of`] is a pure
    /// function of exactly the state the epoch covers, the refreshed
    /// slice is value-identical to a from-scratch build of every node
    /// — pinned by the golden fixtures.
    fn refresh_views(&mut self, views: &mut Vec<NodeView>) {
        if views.len() != self.nodes.len() {
            // First use (the cache starts empty): build everything.
            views.clear();
            views.extend((0..self.nodes.len()).map(|i| self.view_of(i)));
            for (i, slot) in self.view_epoch.iter_mut().enumerate() {
                *slot = self.nodes[i].mutation_epoch();
            }
            return;
        }
        for (i, view) in views.iter_mut().enumerate() {
            let epoch = self.nodes[i].mutation_epoch();
            if self.view_epoch[i] != epoch {
                *view = self.view_of(i);
                self.view_epoch[i] = epoch;
            }
        }
    }

    /// Panics when the dispatcher returned an out-of-range node index.
    fn check_target(&self, target: usize) {
        assert!(
            target < self.nodes.len(),
            "dispatcher `{}` returned out-of-range node {target}",
            self.dispatcher.name()
        );
    }

    /// Flushes the admission queue at sim-time `t`: gates every queued
    /// request through the [`AdmissionPolicy`] and routes the admitted
    /// ones in arrival order, recomputing node views between requests
    /// so one batch spreads over the pool instead of dog-piling the
    /// momentarily-emptiest node. Execution is floored at `t` — a
    /// request held back by admission batching cannot start before the
    /// instant it was dispatched, so the recorded admission wait is real
    /// delay, not bookkeeping — and admission is evaluated at `t` too,
    /// so a deadline lost while the batch filled counts against the
    /// request.
    ///
    /// A rejected request never reaches any [`NodeEngine`]: it is
    /// attributed (via the read-only [`Dispatcher::peek`], so the
    /// rejection cannot perturb how subsequent admissions are routed)
    /// to the node that would have served it and dropped. A degraded
    /// request is re-classed to its relaxed SLO before routing, with
    /// the original SLO recorded for the report's goodput accounting.
    fn dispatch_batch(&mut self, queue: &mut VecDeque<Request>, t: u64) {
        self.sync_nodes(t);
        // Front-end phase timing starts after the node sync, so node
        // execution (its own pick/execute phases) is not double-counted.
        let t0 = self.tracer.profiling().then(std::time::Instant::now);
        let admission_cfg = self.config.frontend.admission;
        let mut views = std::mem::take(&mut self.view_cache);
        while let Some(original) = queue.pop_front() {
            let id = original.id;
            let wait_ns = t - original.arrival_ns;
            self.refresh_views(&mut views);
            let ctx = DispatchContext {
                now_ns: t,
                nodes: &views,
                lut: &self.lut,
                transfer_cost: &self.config.transfer_cost,
                reoffer_src: None,
            };
            let decision = self
                .admission_policy
                .decide(&original, &ctx, &admission_cfg);
            if decision == AdmissionDecision::Reject {
                let would_serve = self.dispatcher.peek(&original, &ctx);
                self.check_target(would_serve);
                self.rejected[would_serve] += 1;
                self.rejected_ids.push(id);
                if self.tracer.enabled() {
                    self.tracer.record(TraceEvent {
                        t_ns: t,
                        request: id,
                        node: NODE_FRONTEND,
                        kind: EventKind::AdmitReject,
                        a: wait_ns,
                        b: 0,
                    });
                }
                continue;
            }
            // Track the admitted request while it is in flight (inlined
            // rather than a `&mut self` helper so the `ctx` borrows of
            // `lut`/`config` stay field-disjoint). Sources mint unique
            // ids and completed/failed ids are never re-admitted, so
            // the insert never displaces an entry.
            let prev = self.live_requests.insert(
                id,
                LiveEntry {
                    request: original,
                    migrations: 0,
                    retries: 0,
                },
            );
            debug_assert!(prev.is_none(), "request id admitted twice");
            self.peak_live = self.peak_live.max(self.live_requests.len());
            let request = if decision == AdmissionDecision::Degrade {
                self.degraded_slo_ns.push((id, original.slo_ns));
                original.relax_slo(admission_cfg.degrade_slo_multiplier)
            } else {
                original
            };
            if self.tracer.enabled() {
                let (kind, relaxed_slo) = if decision == AdmissionDecision::Degrade {
                    (
                        EventKind::AdmitDegrade,
                        request.slo_ns.min(i64::MAX as u64) as i64,
                    )
                } else {
                    (EventKind::Admit, 0)
                };
                self.tracer.record(TraceEvent {
                    t_ns: t,
                    request: id,
                    node: NODE_FRONTEND,
                    kind,
                    a: wait_ns,
                    b: relaxed_slo,
                });
            }
            let target = self.dispatcher.dispatch(&request, &ctx);
            self.check_target(target);
            if decision == AdmissionDecision::Degrade {
                self.degraded[target] += 1;
            }
            if !views[target].health.accepts_work() {
                // Dispatchers only pick a down node when the whole pool
                // is down: the request is admitted (it counts against
                // `routed`) but has nowhere to run — fail it at the
                // door instead of queueing on a dead engine.
                self.routed[target] += 1;
                self.admission_wait_ns.push(t - request.arrival_ns);
                self.fail_request(t, id, target);
                continue;
            }
            let scale = self.dispatch_scale(target, request.spec.model.family());
            let trace = self.source.trace_for(&request);
            self.nodes[target].enqueue_scaled_at(&request, trace, scale, t);
            self.mark_live(target);
            self.routed[target] += 1;
            self.admission_wait_ns.push(t - request.arrival_ns);
            if self.tracer.enabled() {
                let deadline = request.arrival_ns.saturating_add(request.slo_ns);
                let slack = if deadline == u64::MAX {
                    i64::MAX // no deadline
                } else {
                    deadline as i64 - t as i64
                };
                self.tracer.record(TraceEvent {
                    t_ns: t,
                    request: id,
                    node: target as u32,
                    kind: EventKind::Dispatch,
                    a: self.nodes[target].queue_len() as u64,
                    b: slack,
                });
            }
        }
        self.view_cache = views;
        if let Some(t0) = t0 {
            self.tracer
                .phase_ns(Phase::Frontend, t0.elapsed().as_nanos() as u64);
        }
    }

    /// The periodic rebalance: the [`MigrationPolicy`] selects which
    /// nodes are behind, their queued, never-started requests are
    /// re-offered to the dispatcher in arrival order, and the policy
    /// accepts or rejects each proposed move (the engine additionally
    /// enforces the per-request migration budget). Candidates are
    /// evaluated through the read-only [`Dispatcher::peek`] path — only
    /// an applied move charges stateful policies, so a pass that moves
    /// nothing cannot perturb how subsequent arrivals are routed. An
    /// applied move pays the transfer cost on the receiving node.
    fn migration_pass(&mut self, t: u64, views: &mut Vec<NodeView>) {
        if self.config.faults.recovery.reneging {
            // Doomed work leaves the queue before the rebalance tries
            // to move it: reneging runs at the migration cadence (no
            // migration tick configured means no reneging sweep).
            self.renege_pass(t, views);
        }
        let cfg = self.config.frontend.migration.expect("pass implies config");
        // The shared snapshot serves the whole pass: it stays valid
        // across rejected candidates and across source nodes (peek and
        // the policy checks are read-only); only an applied move
        // refreshes it. Only live nodes can hold unstarted work, so
        // the ascending id cursor walks the live set — a node handed
        // work mid-pass is visited when the sweep reaches its id,
        // exactly as the historical all-nodes scan did.
        let mut cursor: Option<usize> = None;
        while let Some(src) = self.next_live_after(cursor) {
            cursor = Some(src);
            // Candidates in arrival order (the active list's order is
            // arbitrary), frozen before any movement from this node.
            let mut candidates: Vec<(u64, u64)> = self.nodes[src]
                .unstarted_tasks()
                .map(|(task, _)| (task.arrival_ns, task.id))
                .collect();
            candidates.sort_unstable();
            for (_, id) in candidates {
                let ctx = DispatchContext {
                    now_ns: t,
                    nodes: views,
                    lut: &self.lut,
                    transfer_cost: &self.config.transfer_cost,
                    // The candidate is already queued on `src`, whose
                    // backlog estimates include it — estimate-projecting
                    // dispatchers must not charge it there twice.
                    reoffer_src: Some(src),
                };
                if !self.migration_policy.should_rebalance(src, &ctx, &cfg) {
                    break; // src is no longer behind.
                }
                let migrations_so_far = self.live_requests[&id].migrations;
                if migrations_so_far >= cfg.max_per_request {
                    continue;
                }
                let request = self.live_request(id);
                if self.tracer.enabled() {
                    self.tracer.record(TraceEvent {
                        t_ns: t,
                        request: id,
                        node: src as u32,
                        kind: EventKind::MigrationOffer,
                        a: u64::from(migrations_so_far),
                        b: 0,
                    });
                }
                let target = self.dispatcher.peek(&request, &ctx);
                self.check_target(target);
                if !self
                    .migration_policy
                    .accept(&request, src, target, &ctx, &cfg)
                {
                    if self.tracer.enabled() {
                        self.tracer.record(TraceEvent {
                            t_ns: t,
                            request: id,
                            node: src as u32,
                            kind: EventKind::MigrationReject,
                            a: 0,
                            b: 0,
                        });
                    }
                    continue;
                }
                // The move is real: charge the dispatcher's state from
                // the same snapshot the decision was made on.
                let charged = self.dispatcher.dispatch(&request, &ctx);
                assert_eq!(
                    charged,
                    target,
                    "dispatcher `{}` peek/dispatch disagree on one snapshot",
                    self.dispatcher.name()
                );
                let fetch_ns =
                    self.stalled_fetch(src, target, ctx.request_transfer_cost_ns(&request));
                let dst_scale = self.dispatch_scale(target, request.spec.model.family());
                let transfer = self.nodes[src]
                    .take_unstarted(id)
                    .expect("candidate is queued and unstarted");
                self.nodes[target].accept_transfer(transfer, dst_scale, t, fetch_ns);
                self.mark_live(target);
                self.transferred_out[src] += 1;
                self.transferred_in[target] += 1;
                self.transfer_fetch_ns[target] += fetch_ns;
                let m = {
                    let entry = self.live_requests.get_mut(&id).expect("request is live");
                    entry.migrations += 1;
                    entry.migrations
                };
                self.max_migrations = self.max_migrations.max(m);
                self.migrations += 1;
                if self.tracer.enabled() {
                    self.tracer.record(TraceEvent {
                        t_ns: t,
                        request: id,
                        node: src as u32,
                        kind: EventKind::MigrationAccept,
                        a: target as u64,
                        b: fetch_ns as i64,
                    });
                }
                self.refresh_views(views);
            }
        }
    }

    /// Queue-time reneging: drops queued, never-started requests whose
    /// deadline the projected-slack estimate says is already lost on
    /// *every* live node — its own queue included (the re-offer rule:
    /// the source's backlog already contains it). Serving such a
    /// request could only burn capacity requests with live deadlines
    /// still need. A reneged request stays in the admitted population
    /// and closes conservation through [`NodeReport::reneged`]; a
    /// deadline-free request is never infeasible and never reneges.
    fn renege_pass(&mut self, t: u64, views: &mut Vec<NodeView>) {
        // Only live nodes can hold unstarted work; the id cursor is
        // robust to the removals the pass itself applies.
        let mut cursor: Option<usize> = None;
        while let Some(src) = self.next_live_after(cursor) {
            cursor = Some(src);
            // Candidates in arrival order, frozen before any removal;
            // the queued task's SLO is carried along so a degraded
            // admission is judged against its relaxed class.
            let mut candidates: Vec<(u64, u64, u64)> = self.nodes[src]
                .unstarted_tasks()
                .map(|(task, _)| (task.arrival_ns, task.id, task.slo_ns))
                .collect();
            candidates.sort_unstable();
            for (arrival_ns, id, slo_ns) in candidates {
                let mut request = self.live_request(id);
                request.slo_ns = slo_ns;
                let ctx = DispatchContext {
                    now_ns: t,
                    nodes: views,
                    lut: &self.lut,
                    transfer_cost: &self.config.transfer_cost,
                    reoffer_src: Some(src),
                };
                if !InfeasibleEverywhere::infeasible_everywhere(&request, &ctx) {
                    continue;
                }
                let slack = EarliestDeadlineFirst::projected_slack_ns(&request, &views[src], &ctx);
                self.nodes[src]
                    .take_unstarted(id)
                    .expect("candidate is queued and unstarted");
                self.live_requests.remove(&id);
                self.reneged[src] += 1;
                self.recovery.reneged += 1;
                self.recovery.reneged_ids.push(id);
                if self.tracer.enabled() {
                    self.tracer.record(TraceEvent {
                        t_ns: t,
                        request: id,
                        node: src as u32,
                        kind: EventKind::Renege,
                        a: t.saturating_sub(arrival_ns),
                        b: slack,
                    });
                }
                self.refresh_views(views);
            }
        }
    }

    /// The ids (ascending) of nodes currently holding stealable —
    /// queued, never-started — work. Only live nodes can qualify, so
    /// the scan never touches a drained node.
    fn stealable_victims(&self) -> Vec<usize> {
        self.live
            .iter()
            .copied()
            .filter(|&v| self.nodes[v].unstarted_tasks().next().is_some())
            .collect()
    }

    /// Every queued, never-started request on the given peers of
    /// `thief`, priced for that thief (service estimates on both sides
    /// plus the transfer cost). `victims` is ascending, so candidate
    /// order matches the historical all-nodes scan.
    fn steal_candidates(&self, thief: usize, victims: &[usize]) -> Vec<StealCandidate> {
        let mut candidates = Vec::new();
        for &victim in victims {
            if victim == thief {
                continue;
            }
            let node = &self.nodes[victim];
            for (task, victim_scale) in node.unstarted_tasks() {
                let info = self.lut.info(task.variant);
                let est_ns = info.avg_latency_ns();
                let thief_scale = self.dispatch_scale(thief, task.spec.model.family());
                candidates.push(StealCandidate {
                    victim,
                    task_id: task.id,
                    arrival_ns: task.arrival_ns,
                    deadline_ns: task.arrival_ns.saturating_add(task.slo_ns),
                    est_ns,
                    on_victim_ns: est_ns * victim_scale,
                    on_thief_ns: est_ns * thief_scale,
                    transfer_cost_ns: if self.config.transfer_cost.is_free() {
                        0
                    } else {
                        self.stalled_fetch(
                            victim,
                            thief,
                            self.config.transfer_cost.estimate_ns(est_ns),
                        )
                    },
                });
            }
        }
        candidates
    }

    /// The steal pass: each idle (fully drained) node asks the
    /// [`StealPolicy`] to pick from the pool's stealable requests; an
    /// applied steal pays the transfer cost on the thief.
    fn steal_pass(&mut self, t: u64, views: &mut Vec<NodeView>) {
        let cfg = self.config.frontend.steal.expect("pass implies config");
        let n = self.nodes.len();
        // No stealable work anywhere means no thief can act: skip the
        // whole pass. ([`StealPolicy::choose`] is a read-only `&self`
        // call, so not consulting it over an empty candidate list is
        // unobservable.) With work present, each candidate scan walks
        // only the victim list instead of every node — this is what
        // turns the historical drained-thieves × all-victims O(N²)
        // sweep into O(thieves × stealable).
        let mut victims = self.stealable_victims();
        if victims.is_empty() {
            return;
        }
        // Snapshots stay valid across thieves that steal nothing; only
        // an applied transfer invalidates them.
        for thief in 0..n {
            // A down node is drained (salvage emptied it) and would
            // otherwise look like the perfect thief: skip it at the
            // engine level too, whatever the policy says.
            if self.health[thief].down || !self.nodes[thief].is_drained() {
                continue;
            }
            let candidates = self.steal_candidates(thief, &victims);
            let ctx = DispatchContext {
                now_ns: t,
                nodes: views,
                lut: &self.lut,
                transfer_cost: &self.config.transfer_cost,
                reoffer_src: None,
            };
            let Some(pick) = self.steal_policy.choose(thief, &candidates, &ctx, &cfg) else {
                continue;
            };
            assert!(
                pick < candidates.len(),
                "steal policy `{}` returned out-of-range candidate {pick}",
                self.steal_policy.name()
            );
            let chosen = candidates[pick];
            let family = self.live_request(chosen.task_id).spec.model.family();
            let scale = self.dispatch_scale(thief, family);
            let transfer = self.nodes[chosen.victim]
                .take_unstarted(chosen.task_id)
                .expect("chosen candidate is queued and unstarted");
            self.nodes[thief].accept_transfer(transfer, scale, t, chosen.transfer_cost_ns);
            self.mark_live(thief);
            self.transferred_out[chosen.victim] += 1;
            self.transferred_in[thief] += 1;
            self.transfer_fetch_ns[thief] += chosen.transfer_cost_ns;
            self.steals += 1;
            if self.tracer.enabled() {
                self.tracer.record(TraceEvent {
                    t_ns: t,
                    request: chosen.task_id,
                    node: thief as u32,
                    kind: EventKind::Steal,
                    a: chosen.victim as u64,
                    b: chosen.transfer_cost_ns as i64,
                });
            }
            self.refresh_views(views);
            victims = self.stealable_victims();
        }
    }

    fn into_report(self) -> ClusterReport
    where
        T: Tracer,
    {
        let Frontend {
            nodes,
            config,
            routed,
            rejected,
            degraded,
            transferred_in,
            transferred_out,
            transfer_fetch_ns,
            admission_wait_ns,
            rejected_ids,
            degraded_slo_ns,
            max_migrations,
            peak_live,
            steals,
            migrations,
            failed,
            reneged,
            recovery,
            ..
        } = self;
        let serving = ServingStats {
            steals,
            migrations,
            max_migrations_single_request: max_migrations,
            transfer_cost_ns: transfer_fetch_ns.iter().sum(),
            admission_wait_ns,
            rejected_ids,
            degraded_slo_ns,
            recovery,
            peak_live_requests: peak_live,
        };
        ClusterReport::with_serving(
            nodes
                .into_iter()
                .zip(&config.nodes)
                .enumerate()
                .map(|(i, (node, nc))| NodeReport {
                    node_id: node.id(),
                    accelerator: nc.accelerator,
                    routed: routed[i],
                    rejected: rejected[i],
                    degraded: degraded[i],
                    transferred_in: transferred_in[i],
                    transferred_out: transferred_out[i],
                    transfer_fetch_ns: transfer_fetch_ns[i],
                    failed: failed[i],
                    reneged: reneged[i],
                    busy_ns: node.busy_ns(),
                    report: node.into_report(),
                })
                .collect(),
            serving,
        )
    }
}
