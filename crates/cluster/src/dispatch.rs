//! Pluggable request-dispatch policies and the shared decision context.
//!
//! The dispatcher is the cluster-level analogue of the node-level
//! [`dysta_core::Scheduler`]: it is consulted through a
//! [`DispatchContext`] — a snapshot of every node as it could have been
//! observed at that instant plus the LUT and the pool's transfer-cost
//! model — and returns the node that will serve the request. The serving
//! front-end consults it when a request leaves the admission queue — and
//! again whenever the migration pass re-offers a queued, never-started
//! request from a node that fell behind its backlog estimate. Re-offers
//! go through the read-only [`Dispatcher::peek`] path first, and only an
//! *applied* move charges stateful policies (a rejected candidate never
//! perturbs the round-robin cursor).
//!
//! The same context type feeds the steal and migration sides of the
//! [`crate::ClusterPolicy`] family (see the `policy` module), so every
//! cluster-level decision — routing, victim choice, migration acceptance
//! — reads one coherent view of the pool.

use dysta_core::ModelInfoLut;
use dysta_models::ModelFamily;
use dysta_workload::Request;

use crate::{AcceleratorKind, TransferCostConfig};

/// What a cluster policy can observe about one node at a scheduling
/// point.
///
/// Snapshots are plain data, computed eagerly for every node at every
/// arrival so dispatchers stay pure functions over them; if dispatch
/// cost ever matters at much larger pool sizes, the backlog estimates
/// are the fields to make lazy.
///
/// The two backlog figures mirror the information tiers the paper's
/// schedulers work with: `lut_backlog_ns` is the static, profiled
/// estimate any dispatcher could precompute, while
/// `predicted_backlog_ns` folds in the runtime sparsity monitor via the
/// [`dysta_core::SparseLatencyPredictor`] — the cluster-level use of the
/// paper's Algorithm 3. The deadline summaries
/// (`earliest_deadline_ns` / `total_slack_ns`) expose the SLO pressure
/// of the node's queue to deadline-aware policies such as
/// [`EarliestDeadlineFirst`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeView {
    /// Node id (index into the cluster's node list).
    pub id: usize,
    /// Installed accelerator.
    pub accelerator: AcceleratorKind,
    /// Node speed factor in `(0, 1]` ([`crate::NodeConfig::capacity`]).
    pub capacity: f64,
    /// Service-time multiplier for family-mismatched requests
    /// ([`crate::NodeConfig::mismatch_slowdown`]).
    pub mismatch_slowdown: f64,
    /// Node-local clock.
    pub now_ns: u64,
    /// Unfinished requests on the node (admitted + queued).
    pub queue_len: usize,
    /// Remaining queued work estimated from LUT averages, scaled by each
    /// request's node-local service-time multiplier (which folds in the
    /// node capacity).
    pub lut_backlog_ns: f64,
    /// Remaining queued work estimated by the sparse latency predictor
    /// from each in-flight request's monitored sparsity stream.
    pub predicted_backlog_ns: f64,
    /// Earliest absolute deadline among the node's unfinished
    /// *deadlined* requests (`u64::MAX` when the node is drained or
    /// holds only deadline-free requests). A request whose saturated
    /// deadline equals `u64::MAX` means "no deadline" and is excluded
    /// from both SLO-pressure summaries — consumers must treat the
    /// sentinel as "no pressure", never do arithmetic on it.
    pub earliest_deadline_ns: u64,
    /// Sum over unfinished *deadlined* requests of
    /// `deadline − now − est_remaining` (LUT estimate, node-scaled):
    /// how much SLO headroom the queue has in aggregate. Negative when
    /// the queue is already overcommitted. Deadline-free requests
    /// contribute nothing (folding their `u64::MAX` sentinel in would
    /// swamp every real deadline with ~1.8e19 of phantom headroom).
    pub total_slack_ns: f64,
    /// Estimated weight/activation re-fetch cost of moving this node's
    /// average queued request to a peer (0 when the queue is empty or
    /// transfers are free) — the per-node aggregate price signal of the
    /// pool's [`TransferCostConfig`], for custom policies that weigh
    /// rebalance pressure at dispatch time. The shipped steal/migration
    /// policies price individual moves instead, via
    /// [`crate::StealCandidate::transfer_cost_ns`] and
    /// [`DispatchContext::request_transfer_cost_ns`].
    pub transfer_cost_ns: u64,
    /// Service time the node has executed so far.
    pub busy_ns: u64,
    /// Liveness as injected by the pool's [`crate::FaultSchedule`]:
    /// `Up` in a fault-free run, `Down` while crashed (accepts no
    /// work), `Degraded` during a brown-out window (carrying the
    /// *effective* capacity — configured capacity times the brown-out
    /// factor — which [`NodeView::service_scale`] prices with).
    pub health: crate::NodeHealth,
}

impl NodeView {
    /// The service-time scale a request of `family` would pay here —
    /// the same formula the engine charges through
    /// [`crate::NodeConfig::effective_scale`] (one shared definition,
    /// so the dispatcher's cost model cannot desync from what requests
    /// actually pay). During a brown-out the health's reduced effective
    /// capacity is what gets charged.
    pub fn service_scale(&self, family: ModelFamily) -> f64 {
        let capacity = match self.health {
            crate::NodeHealth::Degraded { capacity } => capacity,
            _ => self.capacity,
        };
        crate::config::effective_scale(
            self.accelerator.serves(family),
            self.mismatch_slowdown,
            capacity,
        )
    }
}

/// Everything a cluster-level decision gets to look at: causal node
/// snapshots, the profiled LUT, and the pool's transfer-cost model, at
/// one instant of simulated time.
///
/// Shared by all three policy kinds ([`Dispatcher`],
/// [`crate::StealPolicy`], [`crate::MigrationPolicy`]) so their
/// decisions are made against the same information surface.
#[derive(Clone, Copy)]
pub struct DispatchContext<'a> {
    /// The decision instant (front-end sim-time).
    pub now_ns: u64,
    /// One causal snapshot per node, in node-id order.
    pub nodes: &'a [NodeView],
    /// Profiled per-variant statistics.
    pub lut: &'a ModelInfoLut,
    /// The pool's transfer-cost model.
    pub transfer_cost: &'a TransferCostConfig,
    /// `Some(src)` when the request being routed is a migration
    /// re-offer already queued on node `src` — that node's backlog
    /// estimates *include* the request itself, so estimate-projecting
    /// policies (e.g. [`EarliestDeadlineFirst`]) must not charge its
    /// service there a second time. `None` on the admission path.
    pub reoffer_src: Option<usize>,
}

impl DispatchContext<'_> {
    /// Pool-mean LUT-estimated backlog — the reference level the steal
    /// and migration thresholds are expressed against.
    pub fn mean_lut_backlog_ns(&self) -> f64 {
        self.nodes.iter().map(|n| n.lut_backlog_ns).sum::<f64>() / self.nodes.len() as f64
    }

    /// The estimated re-fetch cost of moving `request` between any two
    /// nodes. An unprofiled variant (no LUT entry to size the variable
    /// part from) still pays the flat `base_ns`.
    pub fn request_transfer_cost_ns(&self, request: &Request) -> u64 {
        if self.transfer_cost.is_free() {
            return 0;
        }
        self.lut
            .variant_id(&request.spec)
            .map(|v| {
                self.transfer_cost
                    .estimate_ns(self.lut.info(v).avg_latency_ns())
            })
            .unwrap_or(self.transfer_cost.base_ns)
    }
}

/// A cluster-level request router.
pub trait Dispatcher {
    /// Stable lower-case policy name (used in sweep tables).
    fn name(&self) -> &str;

    /// The node [`Dispatcher::dispatch`] would pick for `request`,
    /// without charging any internal policy state. The migration pass
    /// evaluates candidate moves (most of which it rejects) through this
    /// path, so a rebalance that moves nothing leaves the routing of
    /// subsequent arrivals untouched.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `ctx.nodes` is empty; the cluster
    /// engine never calls with an empty pool.
    fn peek(&self, request: &Request, ctx: &DispatchContext<'_>) -> usize;

    /// Chooses the node that will serve `request` and advances any
    /// internal policy state (e.g. the round-robin cursor). Returns an
    /// index into `ctx.nodes`, and must agree with [`Dispatcher::peek`]
    /// on the same snapshot. The default forwards to `peek` — correct
    /// for every stateless policy.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `ctx.nodes` is empty; the cluster
    /// engine never calls with an empty pool.
    fn dispatch(&mut self, request: &Request, ctx: &DispatchContext<'_>) -> usize {
        self.peek(request, ctx)
    }
}

/// Cycles through nodes in order, ignoring load — the baseline every
/// smarter policy has to beat.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Creates a round-robin dispatcher starting at node 0.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl Dispatcher for RoundRobin {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn peek(&self, _request: &Request, ctx: &DispatchContext<'_>) -> usize {
        // Scan forward from the cursor for the first live node; on an
        // all-healthy pool this is the cursor itself (the historical
        // behavior, bit-exact). With every node down the cursor's pick
        // stands and the engine records the failure.
        let start = self.next % ctx.nodes.len();
        (0..ctx.nodes.len())
            .map(|k| (start + k) % ctx.nodes.len())
            .find(|&i| ctx.nodes[i].health.accepts_work())
            .unwrap_or(start)
    }

    fn dispatch(&mut self, request: &Request, ctx: &DispatchContext<'_>) -> usize {
        let pick = self.peek(request, ctx);
        self.next = (pick + 1) % ctx.nodes.len();
        pick
    }
}

/// Join-shortest-queue by *queued work*: routes to the node with the
/// least LUT-estimated backlog (not the shortest request count, which
/// mis-ranks nodes holding a few long requests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinShortestQueue;

impl JoinShortestQueue {
    /// Creates a JSQ dispatcher.
    pub fn new() -> Self {
        JoinShortestQueue
    }
}

impl Dispatcher for JoinShortestQueue {
    fn name(&self) -> &str {
        "jsq"
    }

    fn peek(&self, _request: &Request, ctx: &DispatchContext<'_>) -> usize {
        let by_lut_backlog = |a: &&NodeView, b: &&NodeView| {
            a.lut_backlog_ns
                .total_cmp(&b.lut_backlog_ns)
                .then(a.id.cmp(&b.id))
        };
        ctx.nodes
            .iter()
            .filter(|n| n.health.accepts_work())
            .min_by(by_lut_backlog)
            .or_else(|| ctx.nodes.iter().min_by(by_lut_backlog))
            .map(|n| n.id)
            .expect("cluster engine never passes an empty pool")
    }
}

/// Least-estimated-load: like JSQ but ranking nodes by the sparse
/// latency predictor's backlog estimate, so a node whose in-flight
/// requests were monitored to be sparser (and will finish sooner) is
/// preferred over one that merely *looks* equally loaded in the LUT.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeastLoaded;

impl LeastLoaded {
    /// Creates a least-estimated-load dispatcher.
    pub fn new() -> Self {
        LeastLoaded
    }
}

impl Dispatcher for LeastLoaded {
    fn name(&self) -> &str {
        "least-loaded"
    }

    fn peek(&self, _request: &Request, ctx: &DispatchContext<'_>) -> usize {
        ctx.nodes
            .iter()
            .filter(|n| n.health.accepts_work())
            .min_by(|a, b| by_predicted_backlog(a, b))
            .or_else(|| ctx.nodes.iter().min_by(|a, b| by_predicted_backlog(a, b)))
            .map(|n| n.id)
            .expect("cluster engine never passes an empty pool")
    }
}

/// Sparsity/LUT-aware affinity: restricts candidates to nodes whose
/// accelerator natively serves the request's model family (CNNs to
/// Eyeriss-V2, AttNNs to Sanger), then picks the least
/// predictor-estimated load among them. Falls back to the whole pool
/// (by predicted load) when no node natively serves the family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SparsityAffinity;

impl SparsityAffinity {
    /// Creates an affinity dispatcher.
    pub fn new() -> Self {
        SparsityAffinity
    }
}

impl Dispatcher for SparsityAffinity {
    fn name(&self) -> &str {
        "affinity"
    }

    fn peek(&self, request: &Request, ctx: &DispatchContext<'_>) -> usize {
        let family = request.spec.model.family();
        let live = |n: &&NodeView| n.health.accepts_work();
        ctx.nodes
            .iter()
            .filter(|n| n.accelerator.serves(family))
            .filter(live)
            .min_by(|a, b| by_predicted_backlog(a, b))
            .or_else(|| {
                ctx.nodes
                    .iter()
                    .filter(live)
                    .min_by(|a, b| by_predicted_backlog(a, b))
            })
            .or_else(|| ctx.nodes.iter().min_by(|a, b| by_predicted_backlog(a, b)))
            .map(|n| n.id)
            .expect("cluster engine never passes an empty pool")
    }
}

/// Cluster-level EDF-family routing on slack: places the request on the
/// node that leaves it the most deadline headroom, spilling across
/// accelerator families only when the deadline demands it.
///
/// For every node the policy projects the request's completion —
/// `max(node clock, now)` plus the node's predictor-estimated backlog
/// (the same tier [`SparsityAffinity`] ranks with) plus the request's
/// own LUT estimate under the node's *effective* service scale
/// (mismatch penalty over capacity) — giving a per-node slack
/// `deadline − projected completion`
/// ([`dysta_workload::Request::slack_ns`]). Routing is three-stage:
///
/// 1. Among family-native nodes that still meet the deadline
///    (slack ≥ 0), pick the least predictor-estimated backlog — the
///    exact ordering [`SparsityAffinity`] uses, so under no deadline
///    pressure the two policies route identically and EDF inherits
///    affinity's ANTT. Unlike affinity, a node whose capacity or
///    straddling clock makes the inbound request *miss* its deadline is
///    excluded here even if its queue is the shortest.
/// 2. When no native node can hold the SLO but some foreign node can,
///    spill to the least-backlogged feasible node. Paying the 2.5×
///    mismatch penalty is exactly the trade a violation-minimizing
///    router must make once the matched nodes are saturated — and it is
///    never made while a native node can still hold the deadline.
/// 3. When *nobody* can hold the deadline, the violation is already
///    decided: fall back to affinity's exact pick (least-backlogged
///    native), rather than dumping a doomed mismatched request onto the
///    other family's nodes where it would stall their tighter traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EarliestDeadlineFirst;

impl EarliestDeadlineFirst {
    /// Creates an EDF dispatcher.
    pub fn new() -> Self {
        EarliestDeadlineFirst
    }

    /// The request's projected slack if routed to `node` now: deadline
    /// minus projected completion under the node's effective scale. For
    /// a migration re-offer evaluated against its own source node
    /// ([`DispatchContext::reoffer_src`]), the node's backlog already
    /// contains the request, so its service is not charged again.
    pub fn projected_slack_ns(
        request: &Request,
        node: &NodeView,
        ctx: &DispatchContext<'_>,
    ) -> i64 {
        let own = if ctx.reoffer_src == Some(node.id) {
            0.0
        } else {
            let est = ctx
                .lut
                .variant_id(&request.spec)
                .map(|v| ctx.lut.info(v).avg_latency_ns())
                .unwrap_or(0.0);
            est * node.service_scale(request.spec.model.family())
        };
        let start = node.now_ns.max(ctx.now_ns);
        // The queue ahead is estimated with the sparsity predictor, the
        // inbound request with its LUT average (it has no monitored
        // stream yet).
        let wait = dysta_core::round_ns(node.predicted_backlog_ns + own);
        request.slack_ns(start, wait)
    }
}

impl Dispatcher for EarliestDeadlineFirst {
    fn name(&self) -> &str {
        "edf"
    }

    fn peek(&self, request: &Request, ctx: &DispatchContext<'_>) -> usize {
        let family = request.spec.model.family();
        let live = |n: &&NodeView| n.health.accepts_work();
        let feasible = |n: &&NodeView| {
            n.health.accepts_work()
                && EarliestDeadlineFirst::projected_slack_ns(request, n, ctx) >= 0
        };
        // Stage 1: live, feasible native nodes, balanced exactly like
        // SparsityAffinity balances.
        if let Some(node) = ctx
            .nodes
            .iter()
            .filter(|n| n.accelerator.serves(family))
            .filter(feasible)
            .min_by(|a, b| by_predicted_backlog(a, b))
        {
            return node.id;
        }
        // Stage 2: deadline pressure — spill to a live, feasible node of
        // any family.
        if let Some(node) = ctx
            .nodes
            .iter()
            .filter(feasible)
            .min_by(|a, b| by_predicted_backlog(a, b))
        {
            return node.id;
        }
        // Stage 3: the deadline is lost everywhere — affinity's pick
        // among whatever is still alive.
        ctx.nodes
            .iter()
            .filter(|n| n.accelerator.serves(family))
            .filter(live)
            .min_by(|a, b| by_predicted_backlog(a, b))
            .or_else(|| {
                ctx.nodes
                    .iter()
                    .filter(live)
                    .min_by(|a, b| by_predicted_backlog(a, b))
            })
            .or_else(|| ctx.nodes.iter().min_by(|a, b| by_predicted_backlog(a, b)))
            .map(|n| n.id)
            .expect("cluster engine never passes an empty pool")
    }
}

/// Shared ranking: least predictor-estimated backlog, node-id tie-break.
fn by_predicted_backlog(a: &NodeView, b: &NodeView) -> std::cmp::Ordering {
    a.predicted_backlog_ns
        .total_cmp(&b.predicted_backlog_ns)
        .then(a.id.cmp(&b.id))
}

/// Every shipped dispatch policy, as a constructible enum (the sweep
/// harness iterates this the way `Policy::ALL` iterates schedulers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DispatchPolicy {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`JoinShortestQueue`].
    JoinShortestQueue,
    /// [`LeastLoaded`].
    LeastLoaded,
    /// [`SparsityAffinity`].
    SparsityAffinity,
    /// [`EarliestDeadlineFirst`].
    EarliestDeadlineFirst,
}

impl DispatchPolicy {
    /// All policies, baseline first.
    pub const ALL: [DispatchPolicy; 5] = [
        DispatchPolicy::RoundRobin,
        DispatchPolicy::JoinShortestQueue,
        DispatchPolicy::LeastLoaded,
        DispatchPolicy::SparsityAffinity,
        DispatchPolicy::EarliestDeadlineFirst,
    ];

    /// The original PR-1 policy set (no EDF) — the grid the recorded
    /// golden fixtures and the like-for-like perf history sweep.
    pub const CLASSIC: [DispatchPolicy; 4] = [
        DispatchPolicy::RoundRobin,
        DispatchPolicy::JoinShortestQueue,
        DispatchPolicy::LeastLoaded,
        DispatchPolicy::SparsityAffinity,
    ];

    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            DispatchPolicy::RoundRobin => "round-robin",
            DispatchPolicy::JoinShortestQueue => "jsq",
            DispatchPolicy::LeastLoaded => "least-loaded",
            DispatchPolicy::SparsityAffinity => "affinity",
            DispatchPolicy::EarliestDeadlineFirst => "edf",
        }
    }

    /// Instantiates the dispatcher.
    pub fn build(self) -> Box<dyn Dispatcher> {
        match self {
            DispatchPolicy::RoundRobin => Box::new(RoundRobin::new()),
            DispatchPolicy::JoinShortestQueue => Box::new(JoinShortestQueue::new()),
            DispatchPolicy::LeastLoaded => Box::new(LeastLoaded::new()),
            DispatchPolicy::SparsityAffinity => Box::new(SparsityAffinity::new()),
            DispatchPolicy::EarliestDeadlineFirst => Box::new(EarliestDeadlineFirst::new()),
        }
    }
}

impl std::fmt::Display for DispatchPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dysta_models::ModelId;
    use dysta_sparsity::SparsityPattern;
    use dysta_trace::SparseModelSpec;

    fn view(id: usize, accelerator: AcceleratorKind, lut: f64, predicted: f64) -> NodeView {
        NodeView {
            id,
            accelerator,
            capacity: 1.0,
            mismatch_slowdown: 2.5,
            now_ns: 0,
            queue_len: 0,
            lut_backlog_ns: lut,
            predicted_backlog_ns: predicted,
            earliest_deadline_ns: u64::MAX,
            total_slack_ns: 0.0,
            transfer_cost_ns: 0,
            busy_ns: 0,
            health: crate::NodeHealth::Up,
        }
    }

    fn ctx<'a>(nodes: &'a [NodeView], lut: &'a ModelInfoLut) -> DispatchContext<'a> {
        DispatchContext {
            now_ns: 0,
            nodes,
            lut,
            transfer_cost: &TransferCostConfig::FREE,
            reoffer_src: None,
        }
    }

    fn cnn_request() -> Request {
        Request {
            id: 0,
            spec: SparseModelSpec::new(ModelId::ResNet50, SparsityPattern::RandomPointwise, 0.8),
            sample_index: 0,
            arrival_ns: 0,
            slo_ns: 1_000_000_000,
        }
    }

    #[test]
    fn round_robin_cycles() {
        let views = [
            view(0, AcceleratorKind::EyerissV2, 0.0, 0.0),
            view(1, AcceleratorKind::EyerissV2, 0.0, 0.0),
        ];
        let mut rr = RoundRobin::new();
        let lut = ModelInfoLut::default();
        let ctx = ctx(&views, &lut);
        let req = cnn_request();
        assert_eq!(rr.dispatch(&req, &ctx), 0);
        assert_eq!(rr.dispatch(&req, &ctx), 1);
        assert_eq!(rr.dispatch(&req, &ctx), 0);
    }

    #[test]
    fn peek_agrees_with_dispatch_and_never_advances_state() {
        let views = [
            view(0, AcceleratorKind::EyerissV2, 4.0, 4.0),
            view(1, AcceleratorKind::EyerissV2, 2.0, 2.0),
            view(2, AcceleratorKind::Sanger, 1.0, 1.0),
        ];
        let lut = ModelInfoLut::default();
        let ctx = ctx(&views, &lut);
        let req = cnn_request();
        for policy in DispatchPolicy::ALL {
            let mut d = policy.build();
            // Any number of peeks is free of side effects...
            let peeked = d.peek(&req, &ctx);
            assert_eq!(d.peek(&req, &ctx), peeked, "{policy}");
            // ...and dispatch agrees with the last peek on the snapshot.
            assert_eq!(d.dispatch(&req, &ctx), peeked, "{policy}");
        }
    }

    #[test]
    fn jsq_follows_lut_backlog_least_loaded_follows_predictor() {
        // Node 0 looks busier in the LUT but its in-flight work was
        // monitored to be sparse (small predicted backlog); the two
        // policies must disagree exactly here.
        let views = [
            view(0, AcceleratorKind::EyerissV2, 10.0, 1.0),
            view(1, AcceleratorKind::EyerissV2, 5.0, 8.0),
        ];
        let lut = ModelInfoLut::default();
        let ctx = ctx(&views, &lut);
        let req = cnn_request();
        assert_eq!(JoinShortestQueue::new().dispatch(&req, &ctx), 1);
        assert_eq!(LeastLoaded::new().dispatch(&req, &ctx), 0);
    }

    #[test]
    fn affinity_prefers_native_accelerator_even_when_busier() {
        let views = [
            view(0, AcceleratorKind::Sanger, 0.0, 0.0),
            view(1, AcceleratorKind::EyerissV2, 5.0, 5.0),
            view(2, AcceleratorKind::EyerissV2, 3.0, 3.0),
        ];
        let lut = ModelInfoLut::default();
        let ctx = ctx(&views, &lut);
        let req = cnn_request();
        assert_eq!(SparsityAffinity::new().dispatch(&req, &ctx), 2);
    }

    #[test]
    fn affinity_falls_back_to_whole_pool() {
        let views = [
            view(0, AcceleratorKind::Sanger, 2.0, 2.0),
            view(1, AcceleratorKind::Sanger, 1.0, 1.0),
        ];
        let lut = ModelInfoLut::default();
        let ctx = ctx(&views, &lut);
        let req = cnn_request();
        assert_eq!(SparsityAffinity::new().dispatch(&req, &ctx), 1);
    }

    #[test]
    fn edf_dodges_infeasible_nodes_spills_under_pressure_and_falls_back_to_affinity() {
        // Node 0 has the shorter queue (affinity's pick) but its clock
        // already straddles far enough that the request's deadline dies
        // there; node 1 can still make it. (Empty LUT: the request's own
        // estimate is 0, so slack = deadline − start − backlog.)
        let mut straddling = view(0, AcceleratorKind::EyerissV2, 1.0e6, 1.0e6);
        straddling.now_ns = 4_000_000;
        let views = [
            straddling,
            view(1, AcceleratorKind::EyerissV2, 3.0e6, 3.0e6),
        ];
        let lut = ModelInfoLut::default();
        let ctx = ctx(&views, &lut);
        let req = Request {
            slo_ns: 4_500_000,
            ..cnn_request()
        };
        assert_eq!(SparsityAffinity::new().dispatch(&req, &ctx), 0);
        assert_eq!(EarliestDeadlineFirst::new().dispatch(&req, &ctx), 1);

        // Same pressure, but node 1 is a Sanger: no native node can hold
        // the deadline, the foreign node can — EDF spills.
        let mut spill = views;
        spill[1].accelerator = AcceleratorKind::Sanger;
        let ctx2 = DispatchContext {
            nodes: &spill,
            ..ctx
        };
        assert_eq!(EarliestDeadlineFirst::new().dispatch(&req, &ctx2), 1);

        // Deadline lost everywhere: EDF makes affinity's exact pick (the
        // least-backlogged native) instead of dumping the doomed request
        // on the other family.
        let doomed = Request {
            slo_ns: 500_000,
            ..cnn_request()
        };
        assert_eq!(
            EarliestDeadlineFirst::new().dispatch(&doomed, &ctx2),
            SparsityAffinity::new().dispatch(&doomed, &ctx2)
        );
    }

    #[test]
    fn every_dispatcher_skips_down_nodes() {
        let mut views = [
            view(0, AcceleratorKind::EyerissV2, 0.0, 0.0),
            view(1, AcceleratorKind::EyerissV2, 5.0, 5.0),
            view(2, AcceleratorKind::Sanger, 9.0, 9.0),
        ];
        // The otherwise-best node (0: native, empty) is down.
        views[0].health = crate::NodeHealth::Down { until_ns: None };
        let lut = ModelInfoLut::default();
        let ctx = ctx(&views, &lut);
        let req = cnn_request();
        for policy in DispatchPolicy::ALL {
            let mut d = policy.build();
            assert_ne!(d.dispatch(&req, &ctx), 0, "{policy} routed to a down node");
        }
        // Round-robin resumes its cycle once the node recovers.
        let mut rr = RoundRobin::new();
        assert_eq!(rr.dispatch(&req, &ctx), 1);
        assert_eq!(rr.dispatch(&req, &ctx), 2);
        assert_eq!(
            rr.dispatch(&req, &ctx),
            1,
            "cursor wraps past the down node"
        );
    }

    #[test]
    fn degraded_health_prices_into_service_scale() {
        let mut n = view(0, AcceleratorKind::EyerissV2, 0.0, 0.0);
        n.health = crate::NodeHealth::Degraded { capacity: 0.5 };
        assert_eq!(n.service_scale(ModelFamily::Cnn), 2.0);
        // The configured capacity field is untouched by a brown-out.
        assert_eq!(n.capacity, 1.0);
    }

    #[test]
    fn service_scale_folds_mismatch_and_capacity() {
        let mut n = view(0, AcceleratorKind::EyerissV2, 0.0, 0.0);
        assert_eq!(n.service_scale(ModelFamily::Cnn), 1.0);
        assert_eq!(n.service_scale(ModelFamily::AttNn), 2.5);
        n.capacity = 0.5;
        assert_eq!(n.service_scale(ModelFamily::Cnn), 2.0);
        assert_eq!(n.service_scale(ModelFamily::AttNn), 5.0);
    }

    #[test]
    fn names_are_stable() {
        for policy in DispatchPolicy::ALL {
            assert_eq!(policy.build().name(), policy.name());
        }
        assert_eq!(DispatchPolicy::EarliestDeadlineFirst.name(), "edf");
    }
}
