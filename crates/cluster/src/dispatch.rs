//! Pluggable request-dispatch policies.
//!
//! The dispatcher is the cluster-level analogue of the node-level
//! [`dysta_core::Scheduler`]: it is consulted with a snapshot of every
//! node as it could have been observed at that instant, and returns the
//! node that will serve the request. The serving front-end consults it
//! when a request leaves the admission queue — and again whenever the
//! migration pass re-offers a queued, never-started request from a node
//! that fell behind its backlog estimate. Re-offers go through the
//! read-only [`Dispatcher::peek`] path first, and only an *applied*
//! move charges stateful policies (a rejected candidate never perturbs
//! the round-robin cursor).

use dysta_core::ModelInfoLut;
use dysta_workload::Request;

use crate::AcceleratorKind;

/// What a dispatcher can observe about one node at a scheduling point.
///
/// Snapshots are plain data, computed eagerly for every node at every
/// arrival so dispatchers stay pure functions over them; if dispatch
/// cost ever matters at much larger pool sizes, the backlog estimates
/// are the fields to make lazy.
///
/// The two backlog figures mirror the information tiers the paper's
/// schedulers work with: `lut_backlog_ns` is the static, profiled
/// estimate any dispatcher could precompute, while
/// `predicted_backlog_ns` folds in the runtime sparsity monitor via the
/// [`dysta_core::SparseLatencyPredictor`] — the cluster-level use of the
/// paper's Algorithm 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeView {
    /// Node id (index into the cluster's node list).
    pub id: usize,
    /// Installed accelerator.
    pub accelerator: AcceleratorKind,
    /// Node-local clock.
    pub now_ns: u64,
    /// Unfinished requests on the node (admitted + queued).
    pub queue_len: usize,
    /// Remaining queued work estimated from LUT averages, scaled by each
    /// request's node-local service-time multiplier.
    pub lut_backlog_ns: f64,
    /// Remaining queued work estimated by the sparse latency predictor
    /// from each in-flight request's monitored sparsity stream.
    pub predicted_backlog_ns: f64,
    /// Service time the node has executed so far.
    pub busy_ns: u64,
}

/// A cluster-level request router.
pub trait Dispatcher {
    /// Stable lower-case policy name (used in sweep tables).
    fn name(&self) -> &str;

    /// The node [`Dispatcher::dispatch`] would pick for `request`,
    /// without charging any internal policy state. The migration pass
    /// evaluates candidate moves (most of which it rejects) through this
    /// path, so a rebalance that moves nothing leaves the routing of
    /// subsequent arrivals untouched.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `nodes` is empty; the cluster engine
    /// never calls with an empty pool.
    fn peek(&self, request: &Request, nodes: &[NodeView], lut: &ModelInfoLut) -> usize;

    /// Chooses the node that will serve `request` and advances any
    /// internal policy state (e.g. the round-robin cursor). Returns an
    /// index into `nodes`, and must agree with [`Dispatcher::peek`] on
    /// the same snapshot. The default forwards to `peek` — correct for
    /// every stateless policy.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `nodes` is empty; the cluster engine
    /// never calls with an empty pool.
    fn dispatch(&mut self, request: &Request, nodes: &[NodeView], lut: &ModelInfoLut) -> usize {
        self.peek(request, nodes, lut)
    }
}

/// Cycles through nodes in order, ignoring load — the baseline every
/// smarter policy has to beat.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Creates a round-robin dispatcher starting at node 0.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl Dispatcher for RoundRobin {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn peek(&self, _request: &Request, nodes: &[NodeView], _lut: &ModelInfoLut) -> usize {
        self.next % nodes.len()
    }

    fn dispatch(&mut self, request: &Request, nodes: &[NodeView], lut: &ModelInfoLut) -> usize {
        let pick = self.peek(request, nodes, lut);
        self.next = (self.next + 1) % nodes.len();
        pick
    }
}

/// Join-shortest-queue by *queued work*: routes to the node with the
/// least LUT-estimated backlog (not the shortest request count, which
/// mis-ranks nodes holding a few long requests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinShortestQueue;

impl JoinShortestQueue {
    /// Creates a JSQ dispatcher.
    pub fn new() -> Self {
        JoinShortestQueue
    }
}

impl Dispatcher for JoinShortestQueue {
    fn name(&self) -> &str {
        "jsq"
    }

    fn peek(&self, _request: &Request, nodes: &[NodeView], _lut: &ModelInfoLut) -> usize {
        nodes
            .iter()
            .min_by(|a, b| {
                a.lut_backlog_ns
                    .total_cmp(&b.lut_backlog_ns)
                    .then(a.id.cmp(&b.id))
            })
            .map(|n| n.id)
            .expect("cluster engine never passes an empty pool")
    }
}

/// Least-estimated-load: like JSQ but ranking nodes by the sparse
/// latency predictor's backlog estimate, so a node whose in-flight
/// requests were monitored to be sparser (and will finish sooner) is
/// preferred over one that merely *looks* equally loaded in the LUT.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeastLoaded;

impl LeastLoaded {
    /// Creates a least-estimated-load dispatcher.
    pub fn new() -> Self {
        LeastLoaded
    }
}

impl Dispatcher for LeastLoaded {
    fn name(&self) -> &str {
        "least-loaded"
    }

    fn peek(&self, _request: &Request, nodes: &[NodeView], _lut: &ModelInfoLut) -> usize {
        nodes
            .iter()
            .min_by(|a, b| by_predicted_backlog(a, b))
            .map(|n| n.id)
            .expect("cluster engine never passes an empty pool")
    }
}

/// Sparsity/LUT-aware affinity: restricts candidates to nodes whose
/// accelerator natively serves the request's model family (CNNs to
/// Eyeriss-V2, AttNNs to Sanger), then picks the least
/// predictor-estimated load among them. Falls back to the whole pool
/// (by predicted load) when no node natively serves the family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SparsityAffinity;

impl SparsityAffinity {
    /// Creates an affinity dispatcher.
    pub fn new() -> Self {
        SparsityAffinity
    }
}

impl Dispatcher for SparsityAffinity {
    fn name(&self) -> &str {
        "affinity"
    }

    fn peek(&self, request: &Request, nodes: &[NodeView], _lut: &ModelInfoLut) -> usize {
        let family = request.spec.model.family();
        nodes
            .iter()
            .filter(|n| n.accelerator.serves(family))
            .min_by(|a, b| by_predicted_backlog(a, b))
            .or_else(|| nodes.iter().min_by(|a, b| by_predicted_backlog(a, b)))
            .map(|n| n.id)
            .expect("cluster engine never passes an empty pool")
    }
}

/// Shared ranking: least predictor-estimated backlog, node-id tie-break.
fn by_predicted_backlog(a: &NodeView, b: &NodeView) -> std::cmp::Ordering {
    a.predicted_backlog_ns
        .total_cmp(&b.predicted_backlog_ns)
        .then(a.id.cmp(&b.id))
}

/// Every shipped dispatch policy, as a constructible enum (the sweep
/// harness iterates this the way `Policy::ALL` iterates schedulers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DispatchPolicy {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`JoinShortestQueue`].
    JoinShortestQueue,
    /// [`LeastLoaded`].
    LeastLoaded,
    /// [`SparsityAffinity`].
    SparsityAffinity,
}

impl DispatchPolicy {
    /// All policies, baseline first.
    pub const ALL: [DispatchPolicy; 4] = [
        DispatchPolicy::RoundRobin,
        DispatchPolicy::JoinShortestQueue,
        DispatchPolicy::LeastLoaded,
        DispatchPolicy::SparsityAffinity,
    ];

    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            DispatchPolicy::RoundRobin => "round-robin",
            DispatchPolicy::JoinShortestQueue => "jsq",
            DispatchPolicy::LeastLoaded => "least-loaded",
            DispatchPolicy::SparsityAffinity => "affinity",
        }
    }

    /// Instantiates the dispatcher.
    pub fn build(self) -> Box<dyn Dispatcher> {
        match self {
            DispatchPolicy::RoundRobin => Box::new(RoundRobin::new()),
            DispatchPolicy::JoinShortestQueue => Box::new(JoinShortestQueue::new()),
            DispatchPolicy::LeastLoaded => Box::new(LeastLoaded::new()),
            DispatchPolicy::SparsityAffinity => Box::new(SparsityAffinity::new()),
        }
    }
}

impl std::fmt::Display for DispatchPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dysta_models::ModelId;
    use dysta_sparsity::SparsityPattern;
    use dysta_trace::SparseModelSpec;

    fn view(id: usize, accelerator: AcceleratorKind, lut: f64, predicted: f64) -> NodeView {
        NodeView {
            id,
            accelerator,
            now_ns: 0,
            queue_len: 0,
            lut_backlog_ns: lut,
            predicted_backlog_ns: predicted,
            busy_ns: 0,
        }
    }

    fn cnn_request() -> Request {
        Request {
            id: 0,
            spec: SparseModelSpec::new(ModelId::ResNet50, SparsityPattern::RandomPointwise, 0.8),
            sample_index: 0,
            arrival_ns: 0,
            slo_ns: 1_000_000_000,
        }
    }

    #[test]
    fn round_robin_cycles() {
        let views = [
            view(0, AcceleratorKind::EyerissV2, 0.0, 0.0),
            view(1, AcceleratorKind::EyerissV2, 0.0, 0.0),
        ];
        let mut rr = RoundRobin::new();
        let lut = ModelInfoLut::default();
        let req = cnn_request();
        assert_eq!(rr.dispatch(&req, &views, &lut), 0);
        assert_eq!(rr.dispatch(&req, &views, &lut), 1);
        assert_eq!(rr.dispatch(&req, &views, &lut), 0);
    }

    #[test]
    fn peek_agrees_with_dispatch_and_never_advances_state() {
        let views = [
            view(0, AcceleratorKind::EyerissV2, 4.0, 4.0),
            view(1, AcceleratorKind::EyerissV2, 2.0, 2.0),
            view(2, AcceleratorKind::Sanger, 1.0, 1.0),
        ];
        let lut = ModelInfoLut::default();
        let req = cnn_request();
        for policy in DispatchPolicy::ALL {
            let mut d = policy.build();
            // Any number of peeks is free of side effects...
            let peeked = d.peek(&req, &views, &lut);
            assert_eq!(d.peek(&req, &views, &lut), peeked, "{policy}");
            // ...and dispatch agrees with the last peek on the snapshot.
            assert_eq!(d.dispatch(&req, &views, &lut), peeked, "{policy}");
        }
    }

    #[test]
    fn jsq_follows_lut_backlog_least_loaded_follows_predictor() {
        // Node 0 looks busier in the LUT but its in-flight work was
        // monitored to be sparse (small predicted backlog); the two
        // policies must disagree exactly here.
        let views = [
            view(0, AcceleratorKind::EyerissV2, 10.0, 1.0),
            view(1, AcceleratorKind::EyerissV2, 5.0, 8.0),
        ];
        let lut = ModelInfoLut::default();
        let req = cnn_request();
        assert_eq!(JoinShortestQueue::new().dispatch(&req, &views, &lut), 1);
        assert_eq!(LeastLoaded::new().dispatch(&req, &views, &lut), 0);
    }

    #[test]
    fn affinity_prefers_native_accelerator_even_when_busier() {
        let views = [
            view(0, AcceleratorKind::Sanger, 0.0, 0.0),
            view(1, AcceleratorKind::EyerissV2, 5.0, 5.0),
            view(2, AcceleratorKind::EyerissV2, 3.0, 3.0),
        ];
        let lut = ModelInfoLut::default();
        let req = cnn_request();
        assert_eq!(SparsityAffinity::new().dispatch(&req, &views, &lut), 2);
    }

    #[test]
    fn affinity_falls_back_to_whole_pool() {
        let views = [
            view(0, AcceleratorKind::Sanger, 2.0, 2.0),
            view(1, AcceleratorKind::Sanger, 1.0, 1.0),
        ];
        let lut = ModelInfoLut::default();
        let req = cnn_request();
        assert_eq!(SparsityAffinity::new().dispatch(&req, &views, &lut), 1);
    }

    #[test]
    fn names_are_stable() {
        for policy in DispatchPolicy::ALL {
            assert_eq!(policy.build().name(), policy.name());
        }
    }
}
