//! Deterministic fault injection and recovery configuration.
//!
//! A [`FaultSchedule`] is a list of sim-clock-keyed [`FaultEvent`]s the
//! cluster event loop replays exactly like its migrate/steal ticks:
//! permanent crashes, transient crashes with a recovery time, brown-out
//! windows (a capacity multiplier), and transfer-stall windows (a
//! fetch-cost multiplier). [`RecoveryConfig`] controls what the
//! front-end does about it — salvage-and-redispatch off crashed nodes
//! with a bounded retry budget, and queue-time reneging of requests
//! whose projected slack has gone negative.
//!
//! An empty schedule with the default recovery settings is a guaranteed
//! no-op: the engine takes none of the fault paths and every report is
//! byte-identical with a fault-free build.

/// Liveness of one node, as seen by every cluster policy through
/// [`crate::NodeView::health`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeHealth {
    /// Fully operational.
    Up,
    /// Crashed: accepts no work. `until_ns` is the scheduled recovery
    /// time for a transient crash, or `None` for a permanent one.
    Down {
        /// Recovery time, or `None` when the node never comes back.
        until_ns: Option<u64>,
    },
    /// Browned out: alive, but running at a reduced effective capacity
    /// (the configured node capacity times the brown-out factor).
    Degraded {
        /// The effective capacity while the brown-out window is open.
        capacity: f64,
    },
}

impl NodeHealth {
    /// True when the node can take new work (everything but `Down`;
    /// a `Degraded` node is slow, not dead).
    pub fn accepts_work(&self) -> bool {
        !matches!(self, NodeHealth::Down { .. })
    }
}

/// What kind of fault hits a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The node goes down and never recovers.
    Crash,
    /// The node goes down and comes back at `down_until_ns`.
    TransientCrash {
        /// Sim time at which the node recovers (must be after the
        /// fault's `at_ns`).
        down_until_ns: u64,
    },
    /// The node's effective capacity is multiplied by
    /// `capacity_factor` until `until_ns` (new dispatches and
    /// transfers land slower; already-queued work keeps the service
    /// scale it was admitted with).
    Brownout {
        /// Window end in sim ns (must be after the fault's `at_ns`).
        until_ns: u64,
        /// Capacity multiplier in `(0, 1]`.
        capacity_factor: f64,
    },
    /// Every transfer touching the node (steal, migration, salvage)
    /// pays `factor` times the modeled fetch cost until `until_ns`.
    TransferStall {
        /// Window end in sim ns (must be after the fault's `at_ns`).
        until_ns: u64,
        /// Fetch-cost multiplier, ≥ 1.
        factor: f64,
    },
}

/// One scheduled fault: `kind` hits `node` at sim time `at_ns`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Sim time at which the fault fires.
    pub at_ns: u64,
    /// The node it hits.
    pub node: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, sim-clock-keyed fault schedule.
///
/// Built with the chainable helpers; replayed in `(at_ns, node)` order
/// by the cluster event loop. The default (empty) schedule injects
/// nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    /// The scheduled faults, in any order (the engine sorts).
    pub events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule (injects nothing).
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds a permanent crash of `node` at `at_ns`.
    #[must_use]
    pub fn crash(mut self, node: usize, at_ns: u64) -> Self {
        self.events.push(FaultEvent {
            at_ns,
            node,
            kind: FaultKind::Crash,
        });
        self
    }

    /// Adds a transient crash of `node` over `[at_ns, down_until_ns)`.
    #[must_use]
    pub fn transient_crash(mut self, node: usize, at_ns: u64, down_until_ns: u64) -> Self {
        self.events.push(FaultEvent {
            at_ns,
            node,
            kind: FaultKind::TransientCrash { down_until_ns },
        });
        self
    }

    /// Adds a brown-out of `node` over `[at_ns, until_ns)` at
    /// `capacity_factor` of its configured capacity.
    #[must_use]
    pub fn brownout(
        mut self,
        node: usize,
        at_ns: u64,
        until_ns: u64,
        capacity_factor: f64,
    ) -> Self {
        self.events.push(FaultEvent {
            at_ns,
            node,
            kind: FaultKind::Brownout {
                until_ns,
                capacity_factor,
            },
        });
        self
    }

    /// Adds a transfer-stall window on `node` over `[at_ns, until_ns)`
    /// inflating fetch costs by `factor`.
    #[must_use]
    pub fn transfer_stall(mut self, node: usize, at_ns: u64, until_ns: u64, factor: f64) -> Self {
        self.events.push(FaultEvent {
            at_ns,
            node,
            kind: FaultKind::TransferStall { until_ns, factor },
        });
        self
    }

    /// Range-checks every scheduled fault against a pool of
    /// `num_nodes` nodes.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid event: node index out
    /// of range, a recovery/window end not after the fault time, a
    /// brown-out factor outside `(0, 1]`, a non-finite / sub-unity
    /// stall factor, or two same-kind windows overlapping on one node.
    /// The engine keeps exactly one open brown-out and one open stall
    /// per node, so a second overlapping window would silently
    /// overwrite the first's factor and orphan its closing edge —
    /// ill-defined semantics the schedule must reject up front.
    /// Half-open `[at_ns, until_ns)` windows that merely touch
    /// (`a.until == b.at`) do not overlap, and windows of different
    /// kinds may freely coincide.
    pub fn validate(&self, num_nodes: usize) -> Result<(), String> {
        for (i, ev) in self.events.iter().enumerate() {
            if ev.node >= num_nodes {
                return Err(format!(
                    "fault {i}: node {} out of range (pool has {num_nodes} nodes)",
                    ev.node
                ));
            }
            match ev.kind {
                FaultKind::Crash => {}
                FaultKind::TransientCrash { down_until_ns } => {
                    if down_until_ns <= ev.at_ns {
                        return Err(format!(
                            "fault {i}: recovery time {down_until_ns} not after crash at {}",
                            ev.at_ns
                        ));
                    }
                }
                FaultKind::Brownout {
                    until_ns,
                    capacity_factor,
                } => {
                    if until_ns <= ev.at_ns {
                        return Err(format!(
                            "fault {i}: brownout end {until_ns} not after start {}",
                            ev.at_ns
                        ));
                    }
                    if !capacity_factor.is_finite()
                        || capacity_factor <= 0.0
                        || capacity_factor > 1.0
                    {
                        return Err(format!(
                            "fault {i}: brownout capacity factor must be in (0, 1], got {capacity_factor}"
                        ));
                    }
                }
                FaultKind::TransferStall { until_ns, factor } => {
                    if until_ns <= ev.at_ns {
                        return Err(format!(
                            "fault {i}: stall end {until_ns} not after start {}",
                            ev.at_ns
                        ));
                    }
                    if !factor.is_finite() || factor < 1.0 {
                        return Err(format!(
                            "fault {i}: stall factor must be finite and >= 1, got {factor}"
                        ));
                    }
                }
            }
        }
        // Same-kind windows must not overlap on one node (the engine
        // tracks one open window of each kind per node). Half-open
        // windows: touching is fine, overlap is not.
        let mut windows: Vec<(usize, u8, u64, u64)> = self
            .events
            .iter()
            .filter_map(|ev| match ev.kind {
                FaultKind::Brownout { until_ns, .. } => Some((ev.node, 0u8, ev.at_ns, until_ns)),
                FaultKind::TransferStall { until_ns, .. } => {
                    Some((ev.node, 1u8, ev.at_ns, until_ns))
                }
                FaultKind::Crash | FaultKind::TransientCrash { .. } => None,
            })
            .collect();
        windows.sort_unstable();
        for pair in windows.windows(2) {
            let (node, tag, start, end) = pair[0];
            let (node2, tag2, start2, _) = pair[1];
            if node == node2 && tag == tag2 && start2 < end {
                let kind = if tag == 0 {
                    "brown-out"
                } else {
                    "transfer-stall"
                };
                return Err(format!(
                    "overlapping {kind} windows on node {node}: \
                     [{start}, {end}) and a second starting at {start2}"
                ));
            }
        }
        Ok(())
    }
}

/// What the front-end does when faults hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Salvage queued/in-flight requests off a crashed node and
    /// re-dispatch them through the live [`crate::Dispatcher`]. When
    /// false, everything on a crashed node is recorded as failed.
    pub salvage: bool,
    /// Per-request salvage budget: a request crashed out more than
    /// this many times is recorded as failed instead of re-dispatched.
    pub max_retries: u32,
    /// Drop a never-started request from its queue the moment its
    /// re-projected slack goes negative on every live node (checked at
    /// migration ticks, so it requires a migration-enabled front-end).
    pub reneging: bool,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            salvage: true,
            max_retries: 2,
            reneging: false,
        }
    }
}

/// The complete fault-injection configuration carried by
/// [`crate::ClusterConfig`]: the schedule plus the recovery behavior.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultConfig {
    /// What goes wrong, and when.
    pub schedule: FaultSchedule,
    /// What the front-end does about it.
    pub recovery: RecoveryConfig,
}

impl FaultConfig {
    /// True when no faults are scheduled and reneging is off — the
    /// engine takes no fault path at all.
    pub fn is_inert(&self) -> bool {
        self.schedule.is_empty() && !self.recovery.reneging
    }

    /// Range-checks the schedule against a pool of `num_nodes` nodes.
    ///
    /// # Errors
    ///
    /// Returns the first invalid scheduled fault (see
    /// [`FaultSchedule::validate`]).
    pub fn validate(&self, num_nodes: usize) -> Result<(), String> {
        self.schedule.validate(num_nodes)
    }
}

/// Cluster-wide fault/recovery accounting, carried in
/// [`crate::ServingStats::recovery`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryStats {
    /// Crash events that fired (permanent + transient).
    pub crashes: u64,
    /// Requests pulled off crashed nodes for re-dispatch.
    pub salvaged: u64,
    /// Successful re-dispatches of salvaged requests.
    pub retries: u64,
    /// Requests dropped from a queue because their projected slack
    /// went negative before they started.
    pub reneged: u64,
    /// Requests recorded as permanently failed (out of retry budget,
    /// salvage disabled, or no live node to take them).
    pub failed: u64,
    /// Executed work destroyed by crashes, in ns (the dead node's busy
    /// time keeps it; this reports how much of that busy time produced
    /// nothing).
    pub lost_busy_ns: u64,
    /// Ids of permanently failed requests, in failure order.
    pub failed_ids: Vec<u64>,
    /// Ids of reneged requests, in drop order.
    pub reneged_ids: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_inert() {
        let cfg = FaultConfig::default();
        assert!(cfg.is_inert());
        assert!(cfg.schedule.is_empty());
        assert!(cfg.recovery.salvage);
        assert_eq!(cfg.recovery.max_retries, 2);
        assert!(!cfg.recovery.reneging);
        assert_eq!(cfg.validate(0), Ok(()));
    }

    #[test]
    fn builder_helpers_chain() {
        let s = FaultSchedule::new()
            .crash(0, 1_000)
            .transient_crash(1, 2_000, 3_000)
            .brownout(2, 100, 900, 0.5)
            .transfer_stall(3, 50, 60, 4.0);
        assert_eq!(s.events.len(), 4);
        assert_eq!(s.validate(4), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_events() {
        let oob = FaultSchedule::new().crash(3, 0);
        assert!(oob.validate(3).unwrap_err().contains("out of range"));
        let inverted = FaultSchedule::new().transient_crash(0, 500, 500);
        assert!(inverted.validate(1).unwrap_err().contains("not after"));
        let factor = FaultSchedule::new().brownout(0, 0, 10, 1.5);
        assert!(factor.validate(1).unwrap_err().contains("(0, 1]"));
        let stall = FaultSchedule::new().transfer_stall(0, 0, 10, 0.5);
        assert!(stall.validate(1).unwrap_err().contains(">= 1"));
    }

    #[test]
    fn validate_rejects_overlapping_brownout_windows() {
        // The engine holds one open brown-out per node: a second window
        // opening inside the first would overwrite its factor and
        // orphan its closing edge.
        let s = FaultSchedule::new()
            .brownout(0, 100, 1_000, 0.5)
            .brownout(0, 500, 2_000, 0.25);
        let err = s.validate(1).unwrap_err();
        assert!(err.contains("overlapping brown-out"), "got: {err}");
        // Builder order does not matter — overlap is detected on the
        // sorted windows.
        let s = FaultSchedule::new()
            .brownout(0, 500, 2_000, 0.25)
            .brownout(0, 100, 1_000, 0.5);
        assert!(s.validate(1).is_err());
    }

    #[test]
    fn validate_rejects_overlapping_stall_windows() {
        let s = FaultSchedule::new()
            .transfer_stall(2, 0, 60, 4.0)
            .transfer_stall(2, 59, 120, 2.0);
        let err = s.validate(3).unwrap_err();
        assert!(err.contains("overlapping transfer-stall"), "got: {err}");
        assert!(err.contains("node 2"), "got: {err}");
    }

    #[test]
    fn validate_allows_touching_and_cross_kind_windows() {
        // Half-open windows: [0, 100) then [100, 200) merely touch.
        let touching = FaultSchedule::new()
            .brownout(0, 0, 100, 0.5)
            .brownout(0, 100, 200, 0.25);
        assert!(touching.validate(1).is_ok());
        // Different kinds (or different nodes) may overlap freely.
        let cross = FaultSchedule::new()
            .brownout(0, 0, 1_000, 0.5)
            .transfer_stall(0, 500, 2_000, 4.0)
            .brownout(1, 0, 1_000, 0.5);
        assert!(cross.validate(2).is_ok());
    }

    #[test]
    fn health_accepts_work() {
        assert!(NodeHealth::Up.accepts_work());
        assert!(NodeHealth::Degraded { capacity: 0.25 }.accepts_work());
        assert!(!NodeHealth::Down { until_ns: None }.accepts_work());
        assert!(!NodeHealth::Down { until_ns: Some(10) }.accepts_work());
    }
}
