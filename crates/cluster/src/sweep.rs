//! Fleet-scale sweep grids: seed × policy × scenario × SLO cells fanned
//! over a [`ThreadPool`], results in grid order.
//!
//! Every experiment figure in the paper reduces to a grid of
//! independent cluster runs — the same pool replayed across seeds,
//! dispatch policies, traffic scenarios, and SLO tightness. Each cell
//! is one [`crate::simulate_cluster_stream`] run sharing nothing with
//! its neighbours, so the grid is the natural parallel axis: cells run
//! on pool workers, and [`ThreadPool::map`] collects results by
//! submission index, so the output `Vec<SweepRow>` — and therefore
//! [`SweepGrid::rows_to_json`] — is byte-identical regardless of the
//! worker count.
//!
//! Cells force their *internal* thread knob to 1: with the grid
//! saturating the pool, a nested per-cell advance pool would only
//! oversubscribe the machine, and the sequential loop is the bit-exact
//! reference anyway.
//!
//! # Examples
//!
//! ```
//! use dysta_cluster::{ClusterConfig, DispatchPolicy, SweepGrid, SweepScenario};
//! use dysta_core::Policy;
//! use dysta_workload::Scenario;
//!
//! let grid = SweepGrid::new(ClusterConfig::heterogeneous(1, 1, Policy::Dysta))
//!     .seeds(vec![1, 2])
//!     .policies(vec![DispatchPolicy::JoinShortestQueue, DispatchPolicy::LeastLoaded])
//!     .scenarios(vec![SweepScenario::new("attnn", Scenario::MultiAttNn, 20.0)])
//!     .slo_multipliers(vec![10.0])
//!     .requests(30)
//!     .samples_per_variant(4);
//! assert_eq!(grid.cell_count(), 4);
//! let sequential = grid.run(1);
//! let parallel = grid.run(4);
//! assert_eq!(
//!     SweepGrid::rows_to_json(&sequential),
//!     SweepGrid::rows_to_json(&parallel)
//! );
//! ```

use serde::{Deserialize, Serialize};
use threadpool::ThreadPool;

use dysta_workload::{Scenario, StreamSpec};

use crate::{simulate_cluster_stream, ClusterConfig, DispatchPolicy};

/// One entry of the grid's scenario axis: a traffic scenario with its
/// arrival rate and the stable name the result rows carry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepScenario {
    /// Stable name reported in [`SweepRow::scenario`].
    pub name: &'static str,
    /// The traffic mix.
    pub scenario: Scenario,
    /// Poisson arrival rate in requests per second.
    pub rate: f64,
}

impl SweepScenario {
    /// A named scenario axis entry.
    pub fn new(name: &'static str, scenario: Scenario, rate: f64) -> Self {
        SweepScenario {
            name,
            scenario,
            rate,
        }
    }
}

/// One grid cell's aggregated report — the stable row format the
/// `fleet_sweep` binary emits and the CI sweep-smoke step diffs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepRow {
    /// [`SweepScenario::name`] of the cell's scenario.
    pub scenario: String,
    /// [`DispatchPolicy::name`] of the cell's dispatcher.
    pub policy: String,
    /// Workload seed.
    pub seed: u64,
    /// Poisson arrival rate in requests per second.
    pub rate: f64,
    /// SLO multiplier the stream was generated with.
    pub slo_multiplier: f64,
    /// Average normalized turnaround time.
    pub antt: f64,
    /// Fraction of completions past their SLO.
    pub violation_rate: f64,
    /// Fraction of offered requests completed within their original SLO.
    pub goodput_rate: f64,
    /// Completed inferences per second over the run's span.
    pub throughput_inf_s: f64,
    /// Requests completed.
    pub completed: u64,
}

/// A seed × policy × scenario × SLO sweep over one cluster
/// configuration, run cell-per-worker on a [`ThreadPool`].
///
/// Cell order is canonical — seeds outermost, then policies, then
/// scenarios, then SLO multipliers — and [`SweepGrid::run`] returns
/// rows in exactly that order whatever the thread count.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// The pool every cell replays (its thread knob is overridden to 1
    /// per cell — the grid is the parallel axis).
    pub config: ClusterConfig,
    /// Workload seeds (outermost axis).
    pub seeds: Vec<u64>,
    /// Dispatch policies.
    pub policies: Vec<DispatchPolicy>,
    /// Traffic scenarios with arrival rates.
    pub scenarios: Vec<SweepScenario>,
    /// SLO multipliers (innermost axis).
    pub slo_multipliers: Vec<f64>,
    /// Requests per cell.
    pub requests: u64,
    /// Trace samples per model variant.
    pub samples_per_variant: u64,
}

impl SweepGrid {
    /// A grid over `config` with empty axes and the quick-mode sizing
    /// (100 requests, 4 samples per variant); chain the axis setters.
    pub fn new(config: ClusterConfig) -> Self {
        SweepGrid {
            config,
            seeds: Vec::new(),
            policies: Vec::new(),
            scenarios: Vec::new(),
            slo_multipliers: Vec::new(),
            requests: 100,
            samples_per_variant: 4,
        }
    }

    /// Replaces the seed axis.
    pub fn seeds(mut self, seeds: Vec<u64>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Replaces the policy axis.
    pub fn policies(mut self, policies: Vec<DispatchPolicy>) -> Self {
        self.policies = policies;
        self
    }

    /// Replaces the scenario axis.
    pub fn scenarios(mut self, scenarios: Vec<SweepScenario>) -> Self {
        self.scenarios = scenarios;
        self
    }

    /// Replaces the SLO-multiplier axis.
    pub fn slo_multipliers(mut self, slo_multipliers: Vec<f64>) -> Self {
        self.slo_multipliers = slo_multipliers;
        self
    }

    /// Sets the per-cell request count.
    pub fn requests(mut self, requests: u64) -> Self {
        self.requests = requests;
        self
    }

    /// Sets the per-cell trace samples per variant.
    pub fn samples_per_variant(mut self, samples: u64) -> Self {
        self.samples_per_variant = samples;
        self
    }

    /// Number of cells the grid will run.
    pub fn cell_count(&self) -> usize {
        self.seeds.len() * self.policies.len() * self.scenarios.len() * self.slo_multipliers.len()
    }

    /// The cells in canonical grid order.
    fn cells(&self) -> Vec<(u64, DispatchPolicy, SweepScenario, f64)> {
        let mut cells = Vec::with_capacity(self.cell_count());
        for &seed in &self.seeds {
            for &policy in &self.policies {
                for &scenario in &self.scenarios {
                    for &slo in &self.slo_multipliers {
                        cells.push((seed, policy, scenario, slo));
                    }
                }
            }
        }
        cells
    }

    /// Runs one cell: an independent streaming cluster run.
    fn run_cell(&self, seed: u64, policy: DispatchPolicy, sc: SweepScenario, slo: f64) -> SweepRow {
        let spec = StreamSpec::steady_poisson(sc.scenario, sc.rate, slo)
            .num_requests(self.requests)
            .samples_per_variant(self.samples_per_variant)
            .seed(seed);
        let store = spec.build_store();
        // The grid owns the parallelism; the cell's own advance loop
        // stays sequential (also the bit-exact reference path).
        let mut config = self.config.clone();
        config.threads = Some(1);
        let report = simulate_cluster_stream(spec.source(&store), policy.build().as_mut(), &config);
        SweepRow {
            scenario: sc.name.to_string(),
            policy: policy.name().to_string(),
            seed,
            rate: sc.rate,
            slo_multiplier: slo,
            antt: report.antt(),
            violation_rate: report.violation_rate(),
            goodput_rate: report.goodput_rate(),
            throughput_inf_s: report.throughput_inf_s(),
            completed: report.completed_total() as u64,
        }
    }

    /// Runs every cell on a pool of `threads` workers and returns the
    /// rows in canonical grid order.
    ///
    /// Each cell is a self-contained run (own trace store, own node
    /// engines); [`ThreadPool::map`] writes results into
    /// submission-indexed slots, so the returned rows — values and
    /// order — are identical for any `threads >= 1`.
    ///
    /// # Panics
    ///
    /// Panics if any axis is empty.
    pub fn run(&self, threads: usize) -> Vec<SweepRow> {
        assert!(self.cell_count() > 0, "sweep grid needs non-empty axes");
        let pool = ThreadPool::new(threads);
        pool.map(self.cells(), |(seed, policy, scenario, slo)| {
            self.run_cell(seed, policy, scenario, slo)
        })
    }

    /// Serializes rows to the stable JSON document the CI sweep-smoke
    /// step compares across thread counts (one array, newline
    /// terminated).
    pub fn rows_to_json(rows: &[SweepRow]) -> String {
        let mut json = serde_json::to_string(&rows.to_vec()).expect("sweep rows serialize");
        json.push('\n');
        json
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AcceleratorKind;
    use dysta_core::Policy;

    fn quick_grid() -> SweepGrid {
        SweepGrid::new(ClusterConfig::homogeneous(
            2,
            AcceleratorKind::Sanger,
            Policy::Fcfs,
        ))
        .seeds(vec![1, 2])
        .policies(vec![
            DispatchPolicy::RoundRobin,
            DispatchPolicy::JoinShortestQueue,
        ])
        .scenarios(vec![SweepScenario::new(
            "attnn",
            Scenario::MultiAttNn,
            20.0,
        )])
        .slo_multipliers(vec![10.0, 20.0])
        .requests(20)
        .samples_per_variant(2)
    }

    #[test]
    fn rows_follow_canonical_grid_order() {
        let grid = quick_grid();
        assert_eq!(grid.cell_count(), 8);
        let rows = grid.run(1);
        assert_eq!(rows.len(), 8);
        // seeds outermost, SLO innermost.
        assert_eq!((rows[0].seed, rows[0].slo_multiplier), (1, 10.0));
        assert_eq!((rows[1].seed, rows[1].slo_multiplier), (1, 20.0));
        assert_eq!(rows[0].policy, "round-robin");
        assert_eq!(rows[2].policy, "jsq");
        assert_eq!(rows[4].seed, 2);
        assert!(rows.iter().all(|r| r.completed == 20));
    }

    #[test]
    fn parallel_rows_are_byte_identical_to_sequential() {
        let grid = quick_grid();
        let seq = grid.run(1);
        for threads in [2, 4, 8] {
            let par = grid.run(threads);
            assert_eq!(
                SweepGrid::rows_to_json(&seq),
                SweepGrid::rows_to_json(&par),
                "{threads}-thread sweep diverged"
            );
        }
    }

    #[test]
    fn rows_round_trip_through_json() {
        let grid = quick_grid().seeds(vec![1]).slo_multipliers(vec![10.0]);
        let rows = grid.run(2);
        let json = SweepGrid::rows_to_json(&rows);
        let back: Vec<SweepRow> = serde_json::from_str(json.trim_end()).expect("parse rows");
        assert_eq!(back, rows);
    }

    #[test]
    #[should_panic(expected = "non-empty axes")]
    fn empty_axis_rejected() {
        let grid = SweepGrid::new(ClusterConfig::homogeneous(
            1,
            AcceleratorKind::Sanger,
            Policy::Fcfs,
        ));
        let _ = grid.run(1);
    }
}
