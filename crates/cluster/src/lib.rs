//! Multi-accelerator cluster simulation (`dysta-cluster`).
//!
//! The paper schedules multi-DNN workloads on a *single* time-shared
//! accelerator; this crate opens the scale-out dimension the ROADMAP's
//! production north-star needs: a pool of N accelerator nodes — each a
//! resumable [`dysta_sim::NodeEngine`] running its own scheduling policy
//! — behind a pluggable cluster-level [`Dispatcher`].
//!
//! * [`ClusterConfig`] describes the pool: node count, per-node engine
//!   parameters, and a (possibly heterogeneous) accelerator mix of
//!   Eyeriss-V2 CNN nodes and Sanger attention nodes. Requests routed to
//!   a mismatched accelerator pay a configurable service-time penalty.
//! * [`Dispatcher`] is consulted once per request at its arrival time
//!   with causal [`NodeView`] snapshots. Four policies ship:
//!   [`RoundRobin`], [`JoinShortestQueue`] (by LUT-estimated queued
//!   work), [`LeastLoaded`] (by the sparse latency predictor's estimate
//!   — the paper's Algorithm 3 applied at cluster level), and
//!   [`SparsityAffinity`] (family-matched routing for heterogeneous
//!   pools).
//! * [`FrontendConfig`] is the cluster's serving front-end: an
//!   admission queue with configurable batching (dispatch every `k`
//!   arrivals or every `Δt` of sim-time), plus optional **work
//!   stealing** ([`StealConfig`]: idle nodes pull queued, never-started
//!   requests from the most-backlogged peer) and **request migration**
//!   ([`MigrationConfig`]: a periodic rebalance pass re-dispatches
//!   queued requests off nodes that fell behind their backlog
//!   estimate, capped per request).
//! * [`ClusterReport`] aggregates per-node [`dysta_sim::SimReport`]s
//!   into cluster-wide ANTT / SLO-violation / throughput plus per-node
//!   utilization, load imbalance, turnaround percentiles
//!   ([`LatencyPercentiles`]: p50/p90/p99), and the front-end's
//!   steal/migration/admission-wait statistics ([`ServingStats`]).
//!
//! A cluster of one node behind any dispatcher — with the default
//! front-end, or batching `k = 1` with stealing/migration enabled (no
//! peers means nothing can move) — reproduces the single-node
//! [`dysta_sim::simulate`] results exactly (pinned by this crate's
//! parity tests).
//!
//! # Examples
//!
//! ```
//! use dysta_cluster::{simulate_cluster, ClusterConfig, DispatchPolicy};
//! use dysta_core::Policy;
//! use dysta_workload::{Scenario, WorkloadBuilder};
//!
//! let workload = WorkloadBuilder::new(Scenario::MultiAttNn)
//!     .num_requests(60)
//!     .samples_per_variant(4)
//!     .seed(7)
//!     .build();
//! let pool = ClusterConfig::heterogeneous(2, 2, Policy::Dysta);
//! let report = simulate_cluster(
//!     &workload,
//!     DispatchPolicy::SparsityAffinity.build().as_mut(),
//!     &pool,
//! );
//! assert_eq!(report.completed_total(), 60);
//! assert!(report.antt() >= 1.0);
//! assert!(report.load_imbalance() >= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod dispatch;
mod engine;
mod report;

pub use config::{
    balanced_mixed_serving_mix, AcceleratorKind, ClusterConfig, FrontendConfig, MigrationConfig,
    NodeConfig, StealConfig, DEFAULT_MISMATCH_SLOWDOWN,
};
pub use dispatch::{
    DispatchPolicy, Dispatcher, JoinShortestQueue, LeastLoaded, NodeView, RoundRobin,
    SparsityAffinity,
};
pub use engine::simulate_cluster;
pub use report::{ClusterReport, LatencyPercentiles, NodeReport, ServingStats};
