//! Placeholder — replaced by the cluster subsystem implementation.
