//! Multi-accelerator cluster simulation (`dysta-cluster`).
//!
//! The paper schedules multi-DNN workloads on a *single* time-shared
//! accelerator; this crate opens the scale-out dimension the ROADMAP's
//! production north-star needs: a pool of N accelerator nodes — each a
//! resumable [`dysta_sim::NodeEngine`] running its own scheduling policy
//! — behind the pluggable cluster-control family [`ClusterPolicy`].
//!
//! # The decision surface
//!
//! Every cluster-level decision is made by one of four traits, all
//! consulted through the same [`DispatchContext`] (causal [`NodeView`]
//! snapshots + the profiled LUT + the pool's [`TransferCostConfig`]):
//!
//! * [`AdmissionPolicy`] gates each request at batch-dispatch time —
//!   Admit, Reject (the request never enters any node engine, and no
//!   steal or migration pass can resurrect it), or Degrade (admit in a
//!   relaxed SLO class recorded on the request;
//!   [`ClusterReport::goodput`] still judges the completion against
//!   the original deadline). Three policies ship: [`AdmitAll`] (the
//!   default — bit-exact with the admission-free engine),
//!   [`InfeasibleEverywhere`] (reject iff the projected slack is
//!   negative on every node — stop serving doomed work), and
//!   [`SlackLoadShedding`] (additionally degrade feasible requests
//!   whose best headroom is under
//!   [`AdmissionConfig::min_slack_fraction`] of their SLO).
//! * [`Dispatcher`] routes each admitted request. Five policies ship:
//!   [`RoundRobin`], [`JoinShortestQueue`] (LUT-estimated queued work),
//!   [`LeastLoaded`] (sparse-latency-predictor backlog — the paper's
//!   Algorithm 3 applied at cluster level), [`SparsityAffinity`]
//!   (family-matched routing on heterogeneous Eyeriss+Sanger pools),
//!   and [`EarliestDeadlineFirst`] (deadline-aware routing on projected
//!   slack, charging each node's capacity and mismatch penalty against
//!   the inbound request).
//! * [`StealPolicy`] picks what an idle node pulls from its peers
//!   (default: [`BacklogGainSteal`], the victim/gain rule the PR 3
//!   engine hard-coded, generalized to price the transfer cost into
//!   every prospective move).
//! * [`MigrationPolicy`] gates the periodic rebalance pass (default:
//!   [`BacklogThresholdMigration`]).
//!
//! The event loop in `engine.rs` only *sequences* — sync nodes,
//! snapshot, consult, apply — so new routing/steal/migration behaviors
//! are libraries, not engine patches. [`simulate_cluster`] serves the
//! common case (a dispatcher plus the default steal/migration
//! policies); [`simulate_cluster_with`] takes a full [`ClusterPolicy`].
//!
//! # Configuration
//!
//! [`ClusterConfig`] describes the pool: per-node engine parameters, a
//! (possibly heterogeneous) accelerator mix, per-node `capacity` speed
//! factors (DVFS / binned silicon — a 0.5 node runs everything twice as
//! slow), the serving front-end ([`FrontendConfig`]: admission
//! batching, work stealing, request migration), and the transfer-cost
//! model ([`TransferCostConfig`]: the weight/activation re-fetch price
//! charged on the receiving node per steal or migration).
//!
//! Anything beyond a plain default pool goes through the validating
//! [`ClusterBuilder`]; [`ClusterConfig::validate`] re-checks every
//! range invariant once per [`simulate_cluster`] call, so hand-mutated
//! configs cannot reach the engine unvalidated.
//!
//! **Migration note** (pre-`ClusterBuilder` API): the former mutators
//! moved onto the builder —
//! `ClusterConfig::with_engine(e)` → builder `.engine(e)`,
//! `with_mismatch_slowdown(s)` → `.mismatch_slowdown(s)`,
//! `with_frontend(f)` → `.frontend(f)`; finish with `.build()`. The
//! plain constructors ([`ClusterConfig::homogeneous`] /
//! [`ClusterConfig::heterogeneous`] / [`ClusterConfig::from_nodes`])
//! are unchanged.
//!
//! # Fault injection & recovery
//!
//! [`ClusterConfig`] also carries a [`FaultConfig`]: a deterministic,
//! sim-clock-keyed [`FaultSchedule`] (permanent/transient crashes,
//! brown-out capacity windows, transfer-stall windows) replayed by the
//! event loop exactly like its migrate/steal ticks, plus a
//! [`RecoveryConfig`] governing what the front-end does about it —
//! salvage-and-redispatch of never-started work off crashed nodes with
//! a bounded per-request retry budget, and optional queue-time
//! reneging. Every [`NodeView`] exposes a [`NodeHealth`] so all four
//! policy traits skip or discount sick nodes, and
//! [`ServingStats::recovery`] ([`RecoveryStats`]) accounts for every
//! crashed, salvaged, retried, reneged and failed request: conservation
//! becomes admitted == completed + failed + reneged, exactly once. An
//! empty schedule is a guaranteed no-op (bit-exact with a fault-free
//! build).
//!
//! [`ClusterReport`] aggregates per-node [`dysta_sim::SimReport`]s into
//! cluster-wide ANTT / SLO-violation / throughput plus per-node
//! utilization, violations and completion slack, transfer-cost
//! accounting, load imbalance, turnaround percentiles
//! ([`LatencyPercentiles`]: p50/p90/p99), and the front-end's
//! steal/migration/admission statistics ([`ServingStats`]).
//!
//! A cluster of one node behind any dispatcher — with the default
//! front-end, or batching `k = 1` with stealing/migration enabled (no
//! peers means nothing can move) — reproduces the single-node
//! [`dysta_sim::simulate`] results exactly (pinned by this crate's
//! parity tests). The default configuration (free transfers, full
//! capacity) is bit-exact with the PR 3 engine for all four original
//! dispatchers.
//!
//! # Examples
//!
//! ```
//! use dysta_cluster::{simulate_cluster, ClusterConfig, DispatchPolicy};
//! use dysta_core::Policy;
//! use dysta_workload::{Scenario, WorkloadBuilder};
//!
//! let workload = WorkloadBuilder::new(Scenario::MultiAttNn)
//!     .num_requests(60)
//!     .samples_per_variant(4)
//!     .seed(7)
//!     .build();
//! let pool = ClusterConfig::heterogeneous(2, 2, Policy::Dysta);
//! let report = simulate_cluster(
//!     &workload,
//!     DispatchPolicy::SparsityAffinity.build().as_mut(),
//!     &pool,
//! );
//! assert_eq!(report.completed_total(), 60);
//! assert!(report.antt() >= 1.0);
//! assert!(report.load_imbalance() >= 1.0);
//! ```
//!
//! Deadline-aware serving on a capacity-heterogeneous pool with costed
//! transfers:
//!
//! ```
//! use dysta_cluster::{
//!     simulate_cluster_with, ClusterBuilder, ClusterPolicy, DispatchPolicy, FrontendConfig,
//!     TransferCostConfig,
//! };
//! use dysta_core::Policy;
//! use dysta_workload::{Scenario, WorkloadBuilder};
//!
//! let workload = WorkloadBuilder::new(Scenario::MultiCnn)
//!     .num_requests(60)
//!     .samples_per_variant(4)
//!     .slo_multiplier(5.0)
//!     .seed(7)
//!     .build();
//! let pool = ClusterBuilder::heterogeneous(2, 2, Policy::Dysta)
//!     .node_capacity(1, 0.5) // one Eyeriss node at half clock
//!     .frontend(FrontendConfig::serving_costed())
//!     .transfer_cost(TransferCostConfig::default_costed())
//!     .build();
//! let mut policy = ClusterPolicy::from_dispatch(DispatchPolicy::EarliestDeadlineFirst);
//! let report = simulate_cluster_with(&workload, &mut policy, &pool);
//! assert_eq!(report.completed_total(), 60);
//! assert_eq!(
//!     report.total_transfer_cost_ns(),
//!     report.serving().transfer_cost_ns
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod dispatch;
mod engine;
mod faults;
mod policy;
mod report;
mod sweep;

pub use config::{
    balanced_mixed_serving_mix, AcceleratorKind, AdmissionConfig, ClusterBuilder, ClusterConfig,
    FrontendConfig, MigrationConfig, NodeConfig, StealConfig, TransferCostConfig,
    DEFAULT_MISMATCH_SLOWDOWN, MAX_THREADS,
};
pub use dispatch::{
    DispatchContext, DispatchPolicy, Dispatcher, EarliestDeadlineFirst, JoinShortestQueue,
    LeastLoaded, NodeView, RoundRobin, SparsityAffinity,
};
pub use engine::{
    simulate_cluster, simulate_cluster_stream, simulate_cluster_stream_with,
    simulate_cluster_traced, simulate_cluster_with, ClusterNode, ClusterTracer,
};
pub use faults::{
    FaultConfig, FaultEvent, FaultKind, FaultSchedule, NodeHealth, RecoveryConfig, RecoveryStats,
};
pub use policy::{
    AdmissionDecision, AdmissionPolicy, AdmitAll, BacklogGainSteal, BacklogThresholdMigration,
    ClusterPolicy, InfeasibleEverywhere, MigrationPolicy, SlackLoadShedding, StealCandidate,
    StealPolicy,
};
pub use report::{ClusterReport, LatencyPercentiles, NodeReport, ServingStats};
pub use sweep::{SweepGrid, SweepRow, SweepScenario};
