//! Cluster-wide aggregation of per-node simulation results.

use dysta_sim::{percentile_ns, percentile_ns_sorted, CompletedRequest, Metrics, SimReport};

use crate::AcceleratorKind;

/// One node's outcome inside a cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeReport {
    /// Node id (index into the cluster config).
    pub node_id: usize,
    /// The node's accelerator.
    pub accelerator: AcceleratorKind,
    /// *Admitted* requests initially dispatched to the node by the
    /// admission front-end (full-class and degraded; never rejected
    /// ones). Stealing, migration, and crash salvage move requests after
    /// initial dispatch, so per node `routed + transferred_in -
    /// transferred_out - failed - reneged` equals the requests it
    /// completed; summed across the pool `routed` alone equals the
    /// number of admitted requests (the workload size minus every
    /// rejection).
    pub routed: usize,
    /// Requests the admission policy rejected whose dispatcher pick —
    /// the node that *would* have served them, read through the
    /// side-effect-free peek path — was this node. Rejected requests
    /// never enter any node engine.
    pub rejected: usize,
    /// Requests admitted to this node in the degraded (relaxed-SLO)
    /// class.
    pub degraded: usize,
    /// Requests moved *onto* this node by work stealing or migration.
    pub transferred_in: usize,
    /// Requests moved *off* this node (after initial dispatch, before
    /// starting) by work stealing or migration.
    pub transferred_out: usize,
    /// Weight/activation re-fetch time this node paid for incoming
    /// transfers (ns) — part of `busy_ns`, zero under free transfers.
    pub transfer_fetch_ns: u64,
    /// Admitted requests that *failed* on this node: they were queued or
    /// running here when the node crashed and could not be salvaged
    /// (recovery disabled, retry budget exhausted, or no live node to
    /// re-dispatch to). Zero under an empty [`crate::FaultSchedule`].
    pub failed: usize,
    /// Admitted requests that *reneged* from this node's queue: dropped
    /// by the front-end before starting because their re-projected slack
    /// had gone negative on every live node. Zero unless
    /// [`crate::RecoveryConfig::reneging`] is enabled.
    pub reneged: usize,
    /// Service time the node executed (ns), including
    /// `transfer_fetch_ns`.
    pub busy_ns: u64,
    /// The node's completion record.
    pub report: SimReport,
}

impl NodeReport {
    /// Requests this node completed past their deadline.
    pub fn violations(&self) -> usize {
        self.report
            .completed()
            .iter()
            .filter(|c| c.violated())
            .count()
    }

    /// Mean completion slack of the node's requests in nanoseconds:
    /// `deadline − completion`, negative when the average request
    /// finished late (0 for an idle node).
    pub fn mean_completion_slack_ns(&self) -> f64 {
        let completed = self.report.completed();
        if completed.is_empty() {
            return 0.0;
        }
        completed
            .iter()
            .map(|c| c.arrival_ns.saturating_add(c.slo_ns) as f64 - c.completion_ns as f64)
            .sum::<f64>()
            / completed.len() as f64
    }
}

/// What the serving front-end did during one cluster run: admission
/// queueing, work stealing, and request migration, summarized.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServingStats {
    /// Requests pulled by idle nodes from backlogged peers.
    pub steals: u64,
    /// Requests re-dispatched by the periodic rebalance pass.
    pub migrations: u64,
    /// The largest migration count any single request accumulated
    /// (bounded by [`crate::MigrationConfig::max_per_request`]).
    pub max_migrations_single_request: u32,
    /// Total weight/activation re-fetch time charged across all steals
    /// and migrations (ns) — zero under free transfers.
    pub transfer_cost_ns: u64,
    /// Time each *admitted* request spent in the cluster admission
    /// queue before dispatch, in dispatch order (all zeros under
    /// immediate dispatch; empty when a report is assembled without a
    /// front-end). Rejected requests never dispatch, so they
    /// contribute no sample.
    pub admission_wait_ns: Vec<u64>,
    /// Ids of the requests the admission policy rejected, in decision
    /// order (empty under [`crate::AdmitAll`]).
    pub rejected_ids: Vec<u64>,
    /// For each degraded admission: the request id and its *original*
    /// SLO in nanoseconds, in decision order. The request runs the
    /// pool under the relaxed deadline; [`ClusterReport::goodput`]
    /// judges its completion against the original recorded here.
    pub degraded_slo_ns: Vec<(u64, u64)>,
    /// What fault injection and recovery did during the run: crashes
    /// seen, requests salvaged off dead nodes, retries applied, reneged
    /// and failed requests, and the executed work lost to crashes. All
    /// zero under an empty [`crate::FaultSchedule`] with reneging off.
    pub recovery: crate::RecoveryStats,
    /// High-water mark of the front-end's live-request table: requests
    /// admitted but not yet observed retired (completed, failed, or
    /// reneged). Bounded by the pool's in-flight backlog — not by the
    /// trace length — which is what lets a streaming source drive
    /// million-request runs in O(pool) memory.
    pub peak_live_requests: usize,
}

impl ServingStats {
    /// Mean admission-queue wait in nanoseconds (0 when no waits were
    /// recorded).
    ///
    /// **Population: admitted requests only.** Rejected requests never
    /// dispatch and contribute no wait sample, so under a shedding
    /// admission policy this mean describes the survivors, not the
    /// offered stream. Scale by
    /// `admitted_total / offered_total` (see
    /// [`ClusterReport::offered_total`]) if an offered-population view
    /// is needed.
    pub fn mean_admission_wait_ns(&self) -> f64 {
        if self.admission_wait_ns.is_empty() {
            return 0.0;
        }
        self.admission_wait_ns.iter().sum::<u64>() as f64 / self.admission_wait_ns.len() as f64
    }

    /// Nearest-rank percentile of the admission-queue wait.
    ///
    /// **Population: admitted requests only** — same caveat as
    /// [`ServingStats::mean_admission_wait_ns`].
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn admission_wait_percentile_ns(&self, p: f64) -> u64 {
        percentile_ns(&self.admission_wait_ns, p)
    }
}

/// The p50/p90/p99 turnaround triple — the tail-latency summary the
/// serving front-end reports next to ANTT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyPercentiles {
    /// Median turnaround (ns).
    pub p50_ns: u64,
    /// 90th-percentile turnaround (ns).
    pub p90_ns: u64,
    /// 99th-percentile turnaround (ns).
    pub p99_ns: u64,
}

/// The full outcome of one cluster simulation.
///
/// Aggregates the paper's evaluation triple (ANTT / SLO violation rate /
/// throughput) over every request regardless of which node served it,
/// plus the cluster-only metrics: per-node utilization, load imbalance,
/// turnaround percentiles, and the serving front-end's steal/migration/
/// admission statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    nodes: Vec<NodeReport>,
    serving: ServingStats,
}

impl ClusterReport {
    /// Assembles a report from per-node results with no front-end
    /// statistics (all serving counters zero).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn new(nodes: Vec<NodeReport>) -> Self {
        ClusterReport::with_serving(nodes, ServingStats::default())
    }

    /// Assembles a report including the serving front-end's statistics.
    ///
    /// A report with zero completions is legal — an admission policy
    /// may reject every request of a run — and yields neutral metrics
    /// (ANTT, violation rate, throughput, and load imbalance all 0).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn with_serving(nodes: Vec<NodeReport>, serving: ServingStats) -> Self {
        assert!(!nodes.is_empty(), "cluster report needs nodes");
        ClusterReport { nodes, serving }
    }

    /// The serving front-end's steal/migration/admission statistics.
    pub fn serving(&self) -> &ServingStats {
        &self.serving
    }

    /// Nearest-rank percentile of per-request turnaround across every
    /// node.
    ///
    /// **Population: completed requests only.** Rejected requests never
    /// ran and have no turnaround; under a shedding admission policy
    /// the tail reported here is conditioned on admission (compare
    /// against [`ClusterReport::offered_total`] to see how much of the
    /// stream it covers).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn turnaround_percentile_ns(&self, p: f64) -> u64 {
        let turnarounds: Vec<u64> = self
            .completed()
            .map(CompletedRequest::turnaround_ns)
            .collect();
        percentile_ns(&turnarounds, p)
    }

    /// The p50/p90/p99 turnaround triple (one collection + sort for all
    /// three ranks).
    ///
    /// **Population: completed requests only** — same caveat as
    /// [`ClusterReport::turnaround_percentile_ns`].
    pub fn latency_percentiles(&self) -> LatencyPercentiles {
        let mut turnarounds: Vec<u64> = self
            .completed()
            .map(CompletedRequest::turnaround_ns)
            .collect();
        turnarounds.sort_unstable();
        LatencyPercentiles {
            p50_ns: percentile_ns_sorted(&turnarounds, 50.0),
            p90_ns: percentile_ns_sorted(&turnarounds, 90.0),
            p99_ns: percentile_ns_sorted(&turnarounds, 99.0),
        }
    }

    /// Per-node outcomes, in node-id order.
    pub fn nodes(&self) -> &[NodeReport] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Iterates every completed request across all nodes.
    pub fn completed(&self) -> impl Iterator<Item = &CompletedRequest> {
        self.nodes.iter().flat_map(|n| n.report.completed().iter())
    }

    /// Total completed requests.
    pub fn completed_total(&self) -> usize {
        self.nodes.iter().map(|n| n.report.completed().len()).sum()
    }

    /// Requests the admission policy turned away at the front-end door
    /// (sum of the per-node [`NodeReport::rejected`] counters; 0 under
    /// [`crate::AdmitAll`]).
    pub fn rejected_total(&self) -> usize {
        self.nodes.iter().map(|n| n.rejected).sum()
    }

    /// Requests admitted in the degraded (relaxed-SLO) class (sum of
    /// the per-node [`NodeReport::degraded`] counters).
    pub fn degraded_total(&self) -> usize {
        self.nodes.iter().map(|n| n.degraded).sum()
    }

    /// Requests the front-end admitted into the pool — full-class plus
    /// degraded, i.e. the sum of the per-node `routed` counters. The
    /// serving conservation invariant is stated over these: per node
    /// `routed + transferred_in − transferred_out − failed − reneged
    /// == completed`, and summed across the pool `admitted_total ==
    /// completed_total + failed_total + reneged_total` once the pool
    /// drains — every admitted request is accounted exactly once, even
    /// under crashes. With an empty [`crate::FaultSchedule`] and
    /// reneging off the last two terms are zero and this collapses to
    /// the fault-free `admitted_total == completed_total`.
    pub fn admitted_total(&self) -> usize {
        self.nodes.iter().map(|n| n.routed).sum()
    }

    /// Admitted requests lost to node crashes (sum of the per-node
    /// [`NodeReport::failed`] counters; 0 under an empty
    /// [`crate::FaultSchedule`]). A failed request counts in
    /// [`ClusterReport::admitted_total`] and
    /// [`ClusterReport::offered_total`] but never completes, so it
    /// weighs down [`ClusterReport::goodput_rate`] automatically.
    pub fn failed_total(&self) -> usize {
        self.nodes.iter().map(|n| n.failed).sum()
    }

    /// Admitted requests dropped from a queue by reneging (sum of the
    /// per-node [`NodeReport::reneged`] counters; 0 unless
    /// [`crate::RecoveryConfig::reneging`] is on). Like failures they
    /// stay in the offered/admitted populations without completing.
    pub fn reneged_total(&self) -> usize {
        self.nodes.iter().map(|n| n.reneged).sum()
    }

    /// The run's fault-injection and recovery accounting
    /// ([`crate::RecoveryStats`]) — shorthand for
    /// `self.serving().recovery`.
    pub fn recovery(&self) -> &crate::RecoveryStats {
        &self.serving.recovery
    }

    /// Every request the front-end saw: admitted (full-class plus
    /// degraded) plus rejected. This is the denominator population for
    /// offered-stream rates such as [`ClusterReport::goodput_rate`];
    /// the latency summaries ([`ClusterReport::turnaround_percentile_ns`],
    /// [`ServingStats::admission_wait_percentile_ns`]) cover only the
    /// admitted subset.
    pub fn offered_total(&self) -> usize {
        self.admitted_total() + self.rejected_total()
    }

    /// Cluster ANTT: the mean normalized turnaround over every request
    /// served anywhere in the pool (0 when nothing completed).
    pub fn antt(&self) -> f64 {
        let total = self.completed_total();
        if total == 0 {
            return 0.0;
        }
        self.completed()
            .map(CompletedRequest::normalized_turnaround)
            .sum::<f64>()
            / total as f64
    }

    /// Cluster SLO violation rate in `[0, 1]`, over the requests the
    /// pool actually served — a degraded admission is judged against
    /// its relaxed deadline here (see [`ClusterReport::goodput`] for
    /// the original-SLO view), and a rejected request is no violation
    /// because it was never served (0 when nothing completed).
    pub fn violation_rate(&self) -> f64 {
        let total = self.completed_total();
        if total == 0 {
            return 0.0;
        }
        self.completed().filter(|c| c.violated()).count() as f64 / total as f64
    }

    /// Goodput: completions that met their *original* SLO. For a
    /// degraded admission the node-side record carries the relaxed
    /// deadline, so this looks the original up in
    /// [`ServingStats::degraded_slo_ns`] — a degraded request that
    /// finished within its relaxed class but past its requested
    /// deadline counts toward throughput and not toward goodput.
    pub fn goodput(&self) -> usize {
        // One map build per call keeps this O(completed + degraded)
        // instead of a per-completion scan of the degraded list.
        let original: std::collections::HashMap<u64, u64> =
            self.serving.degraded_slo_ns.iter().copied().collect();
        self.completed()
            .filter(|c| {
                let original_slo = original.get(&c.id).copied().unwrap_or(c.slo_ns);
                c.completion_ns <= c.arrival_ns.saturating_add(original_slo)
            })
            .count()
    }

    /// Goodput as a fraction of the requests *offered* to the pool
    /// ([`ClusterReport::offered_total`]) — so shedding work can never
    /// inflate it (0 when nothing was offered).
    pub fn goodput_rate(&self) -> f64 {
        let offered = self.offered_total();
        if offered == 0 {
            return 0.0;
        }
        self.goodput() as f64 / offered as f64
    }

    /// The cluster observation window: first arrival to last completion
    /// across all nodes, in nanoseconds.
    pub fn span_ns(&self) -> u64 {
        let first = self.completed().map(|c| c.arrival_ns).min().unwrap_or(0);
        let last = self
            .completed()
            .map(|c| c.completion_ns)
            .max()
            .unwrap_or(first);
        last.saturating_sub(first)
    }

    /// Cluster throughput: completions per second of the observation
    /// window.
    pub fn throughput_inf_s(&self) -> f64 {
        let span_s = self.span_ns() as f64 / 1e9;
        if span_s <= 0.0 {
            0.0
        } else {
            self.completed_total() as f64 / span_s
        }
    }

    /// The evaluation triple, cluster-wide.
    pub fn metrics(&self) -> Metrics {
        Metrics {
            antt: self.antt(),
            violation_rate: self.violation_rate(),
            throughput_inf_s: self.throughput_inf_s(),
        }
    }

    /// Per-node utilization: each node's busy time over the shared
    /// observation window, in `[0, 1]` (a node can idle-wait while the
    /// window runs, never exceed it).
    pub fn per_node_utilization(&self) -> Vec<f64> {
        let span = self.span_ns().max(1) as f64;
        self.nodes
            .iter()
            .map(|n| (n.busy_ns as f64 / span).min(1.0))
            .collect()
    }

    /// Per-node SLO-violation counts, in node-id order.
    pub fn per_node_violations(&self) -> Vec<usize> {
        self.nodes.iter().map(NodeReport::violations).collect()
    }

    /// Per-node mean completion slack (`deadline − completion`, ns), in
    /// node-id order — negative entries mark nodes that ran their queue
    /// late on average.
    pub fn per_node_mean_slack_ns(&self) -> Vec<f64> {
        self.nodes
            .iter()
            .map(NodeReport::mean_completion_slack_ns)
            .collect()
    }

    /// Total weight/activation re-fetch time the pool paid for steals
    /// and migrations (ns). Always equals the sum of the per-node
    /// [`NodeReport::transfer_fetch_ns`] entries and the serving
    /// stats' total.
    pub fn total_transfer_cost_ns(&self) -> u64 {
        self.nodes.iter().map(|n| n.transfer_fetch_ns).sum()
    }

    /// Load imbalance: the busiest node's service time over the mean —
    /// 1.0 is a perfectly balanced pool, `num_nodes()` is one node doing
    /// all the work. Defined as 0.0 for an all-idle pool (zero mean
    /// busy time would otherwise divide to NaN): no work means no
    /// imbalance, and the 0 is distinguishable from a genuinely
    /// balanced pool's 1.0.
    pub fn load_imbalance(&self) -> f64 {
        let busy: Vec<f64> = self.nodes.iter().map(|n| n.busy_ns as f64).collect();
        let mean = busy.iter().sum::<f64>() / busy.len() as f64;
        if mean <= 0.0 {
            0.0
        } else {
            busy.iter().cloned().fold(0.0f64, f64::max) / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dysta_models::ModelId;
    use dysta_sparsity::SparsityPattern;
    use dysta_trace::SparseModelSpec;

    fn completion(id: u64, arrival: u64, completion: u64, isolated: u64) -> CompletedRequest {
        CompletedRequest {
            id,
            spec: SparseModelSpec::new(ModelId::MobileNet, SparsityPattern::Dense, 0.0),
            arrival_ns: arrival,
            completion_ns: completion,
            isolated_ns: isolated,
            slo_ns: u64::MAX / 2,
        }
    }

    fn node(id: usize, completed: Vec<CompletedRequest>, busy_ns: u64) -> NodeReport {
        NodeReport {
            node_id: id,
            accelerator: AcceleratorKind::EyerissV2,
            routed: completed.len(),
            rejected: 0,
            degraded: 0,
            transferred_in: 0,
            transferred_out: 0,
            transfer_fetch_ns: 0,
            failed: 0,
            reneged: 0,
            busy_ns,
            report: SimReport::new(completed, 0, 0),
        }
    }

    #[test]
    fn antt_spans_all_nodes() {
        // NTT 2.0 on node 0, NTT 4.0 on node 1 -> cluster ANTT 3.0.
        let r = ClusterReport::new(vec![
            node(0, vec![completion(0, 0, 20, 10)], 10),
            node(1, vec![completion(1, 0, 40, 10)], 10),
        ]);
        assert!((r.antt() - 3.0).abs() < 1e-12);
        assert_eq!(r.completed_total(), 2);
    }

    #[test]
    fn idle_nodes_are_tolerated_and_show_in_imbalance() {
        let r = ClusterReport::new(vec![
            node(0, vec![completion(0, 0, 20, 10)], 20),
            node(1, Vec::new(), 0),
        ]);
        assert_eq!(r.completed_total(), 1);
        // One node did everything: imbalance = max/mean = 20/10.
        assert!((r.load_imbalance() - 2.0).abs() < 1e-12);
        let util = r.per_node_utilization();
        assert!(util[0] > 0.0);
        assert_eq!(util[1], 0.0);
    }

    #[test]
    fn throughput_uses_cluster_window() {
        let r = ClusterReport::new(vec![
            node(0, vec![completion(0, 0, 1_000_000_000, 10)], 10),
            node(1, vec![completion(1, 500_000_000, 2_000_000_000, 10)], 10),
        ]);
        // 2 completions over the 2-second window.
        assert!((r.throughput_inf_s() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_span_window_yields_zero_throughput_not_inf() {
        // A run can complete work over a zero-width observation window
        // (every completion at its own arrival instant — e.g. one
        // zero-layer request, or all completions at one timestamp).
        // `completions / 0 s` must pin to 0.0, never +inf or NaN,
        // matching the empty-run convention above.
        let r = ClusterReport::new(vec![
            node(0, vec![completion(0, 5, 5, 10)], 0),
            node(1, vec![completion(1, 5, 5, 10)], 0),
        ]);
        assert_eq!(r.span_ns(), 0);
        assert_eq!(r.completed_total(), 2);
        assert_eq!(r.throughput_inf_s(), 0.0);
        assert!(r.throughput_inf_s().is_finite());
        assert!(r.metrics().throughput_inf_s.is_finite());
    }

    #[test]
    fn empty_traffic_run_yields_neutral_metrics() {
        // An admission policy may reject every request: the all-idle
        // report is legal and every metric is neutral — in particular
        // load_imbalance is 0.0 (it used to divide max busy by the
        // zero mean), not NaN/inf.
        let mut rejecting = node(0, Vec::new(), 0);
        rejecting.rejected = 5;
        let r = ClusterReport::new(vec![rejecting, node(1, Vec::new(), 0)]);
        assert_eq!(r.completed_total(), 0);
        assert_eq!(r.admitted_total(), 0);
        assert_eq!(r.rejected_total(), 5);
        assert_eq!(r.offered_total(), 5);
        assert_eq!(r.load_imbalance(), 0.0);
        assert!(r.load_imbalance().is_finite());
        assert_eq!(r.antt(), 0.0);
        assert_eq!(r.violation_rate(), 0.0);
        assert_eq!(r.throughput_inf_s(), 0.0);
        assert_eq!(r.goodput(), 0);
        assert_eq!(r.goodput_rate(), 0.0);
        assert_eq!(r.turnaround_percentile_ns(99.0), 0);
        assert_eq!(r.serving().mean_admission_wait_ns(), 0.0);
    }

    #[test]
    fn goodput_judges_degraded_completions_against_their_original_slo() {
        // Request 1 was degraded: it runs the pool with a relaxed SLO
        // of 100 ns (meets it, so it is no node-side violation) but its
        // original class was 15 ns, which its completion at 40 missed.
        let on_time = CompletedRequest {
            slo_ns: 25,
            ..completion(0, 0, 20, 10)
        };
        let degraded_late = CompletedRequest {
            slo_ns: 100,
            ..completion(1, 0, 40, 10)
        };
        let mut n0 = node(0, vec![on_time, degraded_late], 50);
        n0.degraded = 1;
        let serving = ServingStats {
            degraded_slo_ns: vec![(1, 15)],
            ..ServingStats::default()
        };
        let r = ClusterReport::with_serving(vec![n0], serving);
        assert_eq!(r.violation_rate(), 0.0, "relaxed class was met");
        assert_eq!(r.goodput(), 1, "original class was not");
        assert_eq!(r.degraded_total(), 1);
        assert!((r.goodput_rate() - 0.5).abs() < 1e-12);
        // Rejections widen the goodput denominator: shedding can never
        // inflate the rate.
        let mut shed = r.clone();
        shed.nodes[0].rejected = 2;
        assert_eq!(shed.offered_total(), 4);
        assert!((shed.goodput_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn turnaround_percentiles_match_hand_computation() {
        // Turnarounds 10, 20, 30, 40 ns across two nodes.
        let r = ClusterReport::new(vec![
            node(
                0,
                vec![completion(0, 0, 10, 5), completion(1, 0, 30, 5)],
                40,
            ),
            node(
                1,
                vec![completion(2, 0, 20, 5), completion(3, 0, 40, 5)],
                60,
            ),
        ]);
        assert_eq!(r.turnaround_percentile_ns(50.0), 20);
        assert_eq!(r.turnaround_percentile_ns(90.0), 40);
        let p = r.latency_percentiles();
        assert_eq!((p.p50_ns, p.p90_ns, p.p99_ns), (20, 40, 40));
    }

    #[test]
    fn single_request_percentiles_collapse_to_its_turnaround() {
        let r = ClusterReport::new(vec![node(0, vec![completion(0, 5, 35, 10)], 30)]);
        let p = r.latency_percentiles();
        assert_eq!((p.p50_ns, p.p90_ns, p.p99_ns), (30, 30, 30));
    }

    #[test]
    fn default_serving_stats_are_neutral() {
        let r = ClusterReport::new(vec![node(0, vec![completion(0, 0, 10, 5)], 10)]);
        assert_eq!(r.serving().steals, 0);
        assert_eq!(r.serving().migrations, 0);
        assert_eq!(r.serving().mean_admission_wait_ns(), 0.0);
        assert_eq!(r.serving().admission_wait_percentile_ns(99.0), 0);
    }

    #[test]
    fn admission_wait_summary_edges_are_total() {
        // Empty sample set (a run that admitted nothing): mean and every
        // percentile — including the p = 0 edge — are 0, never NaN or a
        // panic.
        let empty = ServingStats::default();
        assert_eq!(empty.mean_admission_wait_ns(), 0.0);
        assert!(empty.mean_admission_wait_ns().is_finite());
        assert_eq!(empty.admission_wait_percentile_ns(0.0), 0);
        assert_eq!(empty.admission_wait_percentile_ns(50.0), 0);
        assert_eq!(empty.admission_wait_percentile_ns(100.0), 0);
        // Non-empty: p = 0 is the minimum (nearest-rank convention),
        // not an out-of-bounds index.
        let some = ServingStats {
            admission_wait_ns: vec![30, 10, 20],
            ..ServingStats::default()
        };
        assert_eq!(some.admission_wait_percentile_ns(0.0), 10);
        assert_eq!(some.admission_wait_percentile_ns(100.0), 30);
        assert!((some.mean_admission_wait_ns() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn per_node_slack_violation_and_transfer_cost_accounting() {
        // Node 0 finishes its request with 5 ns to spare; node 1 blows
        // its deadline by 10 ns and paid 7 ns of fetch cost.
        let on_time = CompletedRequest {
            slo_ns: 25,
            ..completion(0, 0, 20, 10)
        };
        let late = CompletedRequest {
            slo_ns: 30,
            ..completion(1, 0, 40, 10)
        };
        let mut n1 = node(1, vec![late], 17);
        n1.transfer_fetch_ns = 7;
        let r = ClusterReport::new(vec![node(0, vec![on_time], 10), n1]);
        assert_eq!(r.per_node_violations(), vec![0, 1]);
        let slack = r.per_node_mean_slack_ns();
        assert!((slack[0] - 5.0).abs() < 1e-12);
        assert!((slack[1] + 10.0).abs() < 1e-12);
        assert_eq!(r.total_transfer_cost_ns(), 7);
    }

    #[test]
    fn failed_and_reneged_totals_restate_conservation() {
        // Node 0 admitted 3: completed 1, failed 1, reneged 1. The pool
        // totals balance (admitted == completed + failed + reneged) and
        // the goodput denominator keeps the lost requests.
        let mut n0 = node(0, vec![completion(0, 0, 10, 5)], 10);
        n0.routed = 3;
        n0.failed = 1;
        n0.reneged = 1;
        let serving = ServingStats {
            recovery: crate::RecoveryStats {
                crashes: 1,
                salvaged: 1,
                failed: 1,
                reneged: 1,
                lost_busy_ns: 42,
                failed_ids: vec![1],
                reneged_ids: vec![2],
                ..crate::RecoveryStats::default()
            },
            ..ServingStats::default()
        };
        let r = ClusterReport::with_serving(vec![n0], serving);
        assert_eq!(r.admitted_total(), 3);
        assert_eq!(r.failed_total(), 1);
        assert_eq!(r.reneged_total(), 1);
        assert_eq!(
            r.admitted_total(),
            r.completed_total() + r.failed_total() + r.reneged_total()
        );
        assert_eq!(r.offered_total(), 3);
        assert!((r.goodput_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.recovery().crashes, 1);
        assert_eq!(r.recovery().lost_busy_ns, 42);
        assert_eq!(r.recovery().failed_ids, vec![1]);
    }

    #[test]
    fn admission_wait_summary() {
        let serving = ServingStats {
            steals: 3,
            migrations: 1,
            max_migrations_single_request: 1,
            transfer_cost_ns: 0,
            admission_wait_ns: vec![0, 10, 20, 30],
            ..ServingStats::default()
        };
        let r =
            ClusterReport::with_serving(vec![node(0, vec![completion(0, 0, 10, 5)], 10)], serving);
        assert!((r.serving().mean_admission_wait_ns() - 15.0).abs() < 1e-12);
        assert_eq!(r.serving().admission_wait_percentile_ns(50.0), 10);
        assert_eq!(r.serving().admission_wait_percentile_ns(100.0), 30);
    }
}
