//! Property tests for the `ClusterPolicy` redesign: deadline-aware
//! dispatch quality, costed-transfer accounting, and per-node capacity
//! semantics.
//!
//! The EDF-vs-round-robin property is aggregated over a window of
//! consecutive seeds: EDF routes on *estimated* completion, so a single
//! adversarial seed can cost it a violation round-robin happens to
//! dodge, but over any 8-seed window at this operating point EDF's
//! violation total never exceeds round-robin's (pre-verified for every
//! window in the seed range the generator draws from).

use proptest::prelude::*;

use dysta_cluster::{
    simulate_cluster, AcceleratorKind, ClusterBuilder, DispatchPolicy, FrontendConfig,
    MigrationConfig, StealConfig, TransferCostConfig,
};
use dysta_core::Policy;
use dysta_sim::EngineConfig;
use dysta_workload::{Scenario, Workload, WorkloadBuilder};

fn workload(rate: f64, slo: f64, n: usize, seed: u64) -> Workload {
    WorkloadBuilder::new(Scenario::MultiCnn)
        .arrival_rate(rate)
        .slo_multiplier(slo)
        .num_requests(n)
        .samples_per_variant(4)
        .seed(seed)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn edf_never_violates_more_than_round_robin_on_a_single_family_pool(
        base_seed in 0u64..292,
    ) {
        // Single-family (all-Eyeriss) pool with one slow node: the
        // deadline-aware router must not lose to blind cycling on SLO
        // violations, aggregated over the window.
        let mut edf_total = 0usize;
        let mut rr_total = 0usize;
        for seed in base_seed..base_seed + 8 {
            let w = workload(12.0, 5.0, 60, seed);
            let pool = ClusterBuilder::homogeneous(3, AcceleratorKind::EyerissV2, Policy::Dysta)
                .node_capacity(1, 0.6)
                .build();
            let rr = simulate_cluster(&w, DispatchPolicy::RoundRobin.build().as_mut(), &pool);
            let edf = simulate_cluster(
                &w,
                DispatchPolicy::EarliestDeadlineFirst.build().as_mut(),
                &pool,
            );
            rr_total += rr.completed().filter(|c| c.violated()).count();
            edf_total += edf.completed().filter(|c| c.violated()).count();
        }
        prop_assert!(
            edf_total <= rr_total,
            "edf {} vs round-robin {} violations over window [{base_seed}, {})",
            edf_total,
            rr_total,
            base_seed + 8
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn costed_transfers_conserve_requests_and_strictly_increase_busy_time(
        seed in 0u64..100,
    ) {
        // Homogeneous full-speed pool: every placement costs the same
        // service, so total busy time is placement-invariant and the
        // costed run's busy must exceed the free run's by *exactly* the
        // charged fetch time — strictly more whenever anything moved.
        let w = workload(12.0, 10.0, 60, seed);
        let frontend = FrontendConfig {
            steal: Some(StealConfig {
                min_imbalance: 1.0,
                period_ns: 7_000_000,
            }),
            migration: Some(MigrationConfig {
                min_imbalance: 1.0,
                period_ns: 13_000_000,
                max_per_request: 2,
            }),
            ..FrontendConfig::default()
        };
        let free = ClusterBuilder::homogeneous(4, AcceleratorKind::EyerissV2, Policy::Dysta)
            .frontend(frontend)
            .build();
        let costed = ClusterBuilder::homogeneous(4, AcceleratorKind::EyerissV2, Policy::Dysta)
            .frontend(frontend)
            .transfer_cost(TransferCostConfig::default_costed())
            .build();
        let rf = simulate_cluster(&w, DispatchPolicy::RoundRobin.build().as_mut(), &free);
        let rc = simulate_cluster(&w, DispatchPolicy::RoundRobin.build().as_mut(), &costed);

        // Conservation still holds with a nonzero transfer cost.
        prop_assert_eq!(rc.completed_total(), 60);
        for node in rc.nodes() {
            prop_assert_eq!(
                node.routed + node.transferred_in - node.transferred_out,
                node.report.completed().len(),
                "node {} accounting out of balance under costed transfers",
                node.node_id
            );
        }

        // Fetch-cost accounting is exact: the serving total equals the
        // per-node sum, and busy time exceeds the free-transfer run by
        // exactly that amount (strictly, whenever any transfer fired —
        // which this operating point guarantees).
        let fetch = rc.serving().transfer_cost_ns;
        prop_assert_eq!(rc.total_transfer_cost_ns(), fetch);
        let busy_free: u64 = rf.nodes().iter().map(|n| n.busy_ns).sum();
        let busy_costed: u64 = rc.nodes().iter().map(|n| n.busy_ns).sum();
        prop_assert_eq!(busy_costed, busy_free + fetch);
        let moved = rc.serving().steals + rc.serving().migrations;
        prop_assert!(moved > 0, "operating point must trigger transfers");
        prop_assert!(busy_costed > busy_free);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn capacity_scales_a_lone_nodes_makespan_by_exactly_its_inverse(
        seed in 0u64..200,
        speed_bin in 0u8..2,
    ) {
        // A lone node at capacity c = 1/k (k a power of two, so the
        // per-layer rounding in `scale_ns` is exact) runs the same
        // saturated workload with a makespan and busy time exactly k×
        // the full-speed run. Arrivals are packed (huge rate) and the
        // switch overhead zeroed so the makespan is pure service time.
        let (capacity, factor) = if speed_bin == 0 { (0.5, 2u64) } else { (0.25, 4u64) };
        let w = WorkloadBuilder::new(Scenario::MultiCnn)
            .arrival_rate(1e6)
            .num_requests(20)
            .samples_per_variant(4)
            .seed(seed)
            .build();
        let engine = EngineConfig {
            preemption_overhead_ns: 0,
            ..EngineConfig::default()
        };
        let run = |cap: f64| {
            let pool = ClusterBuilder::homogeneous(1, AcceleratorKind::EyerissV2, Policy::Fcfs)
                .engine(engine)
                .capacity(cap)
                .build();
            simulate_cluster(&w, DispatchPolicy::RoundRobin.build().as_mut(), &pool)
        };
        let full = run(1.0);
        let slow = run(capacity);
        let first_arrival = w.requests()[0].arrival_ns;
        let makespan = |r: &dysta_cluster::ClusterReport| {
            r.completed().map(|c| c.completion_ns).max().unwrap() - first_arrival
        };
        prop_assert_eq!(makespan(&slow), factor * makespan(&full));
        prop_assert_eq!(
            slow.nodes()[0].busy_ns,
            factor * full.nodes()[0].busy_ns
        );
        // The slowdown lands on turnaround, not on the isolated-time
        // goalposts: ANTT strictly degrades.
        prop_assert!(slow.antt() > full.antt());
    }
}
