//! Bit-exactness of the parallel execution stack: the sharded advance
//! loop and the fanned-out sweep grid must produce reports
//! byte-identical to the sequential path across pool shapes × all
//! dispatchers × fault schedules × thread counts {1, 2, 4, 8}.
//!
//! Reports are compared as `format!("{:?}")` bytes: `f64` Debug prints
//! the shortest round-trip decimal, so any bit-level divergence in any
//! metric surfaces as a string mismatch.

use proptest::prelude::*;

use dysta_cluster::{
    simulate_cluster_with, AcceleratorKind, ClusterBuilder, ClusterConfig, ClusterPolicy,
    DispatchPolicy, FaultConfig, FaultSchedule, FrontendConfig, RecoveryConfig, SweepGrid,
    SweepScenario,
};
use dysta_core::Policy;
use dysta_workload::{Scenario, Workload, WorkloadBuilder};

/// Thread counts the determinism contract is pinned at.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn workload(rate: f64, slo: f64, n: usize, seed: u64) -> Workload {
    WorkloadBuilder::new(Scenario::MultiCnn)
        .arrival_rate(rate)
        .slo_multiplier(slo)
        .num_requests(n)
        .samples_per_variant(4)
        .seed(seed)
        .build()
}

/// The fault-property pool shapes, with an explicit thread knob.
fn pool(shape: u8, faults: FaultConfig, threads: usize) -> ClusterConfig {
    match shape {
        0 => ClusterBuilder::homogeneous(3, AcceleratorKind::EyerissV2, Policy::Dysta),
        1 => ClusterBuilder::heterogeneous(2, 2, Policy::Dysta),
        _ => ClusterBuilder::heterogeneous(2, 2, Policy::Dysta)
            .node_capacity(1, 0.5)
            .node_capacity(3, 0.5),
    }
    .frontend(FrontendConfig::serving())
    .faults(faults)
    .threads(threads)
    .build()
}

fn num_nodes(shape: u8) -> usize {
    match shape {
        0 => 3,
        _ => 4,
    }
}

/// A crash plus a brown-out window inside the span a 60-request
/// overdriven stream occupies — deep queues when the crash lands, so
/// salvage and re-dispatch run under the parallel advance too.
fn schedule(nodes: usize, crash_node: usize, crash_at: u64, transient: bool) -> FaultSchedule {
    let crash_node = crash_node % nodes;
    let s = if transient {
        FaultSchedule::new().transient_crash(crash_node, crash_at, crash_at + 900_000_000)
    } else {
        FaultSchedule::new().crash(crash_node, crash_at)
    };
    s.brownout(
        (crash_node + 1) % nodes,
        crash_at / 2,
        crash_at + 700_000_000,
        0.5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sharded_loop_reports_are_byte_identical_across_thread_counts(
        seed in 0u64..500,
        shape in 0u8..3,
        dispatch in prop::sample::select(DispatchPolicy::ALL.to_vec()),
        faulty in 0u8..2,
        crash_node in 0usize..4,
        crash_at in 100_000_000u64..2_000_000_000,
        transient in 0u8..2,
    ) {
        let w = workload(25.0, 2.0, 60, seed);
        let faults = if faulty == 1 {
            FaultConfig {
                schedule: schedule(num_nodes(shape), crash_node, crash_at, transient == 1),
                recovery: RecoveryConfig { salvage: true, max_retries: 2, reneging: false },
            }
        } else {
            FaultConfig::default()
        };
        let mut baseline: Option<String> = None;
        for threads in THREAD_COUNTS {
            let mut policy = ClusterPolicy::from_dispatch(dispatch);
            let report = simulate_cluster_with(
                &w,
                &mut policy,
                &pool(shape, faults.clone(), threads),
            );
            let bytes = format!("{report:?}");
            match &baseline {
                None => baseline = Some(bytes),
                Some(expected) => prop_assert_eq!(
                    expected,
                    &bytes,
                    "{}-thread report diverged from sequential",
                    threads
                ),
            }
        }
    }

    #[test]
    fn parallel_sweep_grid_json_is_byte_identical_across_thread_counts(
        seed_a in 0u64..500,
        seed_b in 500u64..1000,
        slo in 2u32..20,
    ) {
        let grid = SweepGrid::new(ClusterConfig::heterogeneous(1, 1, Policy::Dysta))
            .seeds(vec![seed_a, seed_b])
            .policies(DispatchPolicy::ALL.to_vec())
            .scenarios(vec![SweepScenario::new("attnn", Scenario::MultiAttNn, 20.0)])
            .slo_multipliers(vec![f64::from(slo)])
            .requests(20)
            .samples_per_variant(2);
        let sequential = SweepGrid::rows_to_json(&grid.run(1));
        for threads in [2, 4, 8] {
            let parallel = SweepGrid::rows_to_json(&grid.run(threads));
            prop_assert_eq!(
                &sequential,
                &parallel,
                "{}-thread sweep JSON diverged from sequential",
                threads
            );
        }
    }
}

/// The `DYSTA_THREADS` environment path takes the same parallel advance
/// the explicit builder knob does, and stays bit-exact. The variable is
/// only ever *read* here — `set_var` would race other test threads'
/// `env::var` calls (UB on glibc) — so the test runs against whatever
/// the harness inherited: the CI matrix executes the suite under both
/// `DYSTA_THREADS=1` and `DYSTA_THREADS=4`, which pins the env path at
/// both the sequential and the parallel width.
#[test]
fn dysta_threads_env_is_bit_exact_with_explicit_knob() {
    let env_threads = std::env::var("DYSTA_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(1);
    let via_env_config = ClusterBuilder::heterogeneous(2, 2, Policy::Dysta)
        .frontend(FrontendConfig::serving())
        .build();
    assert_eq!(
        via_env_config.resolved_threads(),
        env_threads,
        "config without an explicit knob must resolve to the environment"
    );

    let w = workload(25.0, 2.0, 50, 7);
    let run = |config: &ClusterConfig| {
        let mut policy = ClusterPolicy::from_dispatch(DispatchPolicy::LeastLoaded);
        format!("{:?}", simulate_cluster_with(&w, &mut policy, config))
    };
    let sequential = run(&pool(1, FaultConfig::default(), 1));
    let knobbed = run(&pool(1, FaultConfig::default(), env_threads.max(2)));
    let via_env = run(&via_env_config);

    assert_eq!(sequential, knobbed, "explicit multi-thread knob diverged");
    assert_eq!(
        sequential, via_env,
        "DYSTA_THREADS={env_threads} run diverged"
    );
}
