//! Tracing must *observe* a cluster run, never perturb it: a traced
//! run's report is identical to the untraced run's, the recorded event
//! stream is well-formed and consistent with the report's own counters,
//! and two identical traced runs export byte-identical Perfetto JSON.

use dysta_cluster::{
    simulate_cluster_traced, simulate_cluster_with, ClusterBuilder, ClusterConfig, ClusterPolicy,
    DispatchPolicy, FrontendConfig, MigrationConfig, StealConfig, TransferCostConfig,
};
use dysta_core::Policy;
use dysta_obs::{EventKind, RingTracer, NODE_FRONTEND};
use dysta_workload::{Scenario, Workload, WorkloadBuilder};

fn serving_workload(seed: u64) -> Workload {
    WorkloadBuilder::new(Scenario::MultiCnn)
        .arrival_rate(9.0)
        .num_requests(60)
        .samples_per_variant(4)
        .seed(seed)
        .build()
}

/// A pool busy enough to exercise steals and migrations.
fn serving_pool() -> ClusterConfig {
    ClusterBuilder::heterogeneous(2, 2, Policy::Dysta)
        .frontend(FrontendConfig {
            admit_batch: 4,
            admit_interval_ns: 25_000_000,
            steal: Some(StealConfig {
                min_imbalance: 1.2,
                period_ns: 7_000_000,
            }),
            migration: Some(MigrationConfig {
                min_imbalance: 1.2,
                period_ns: 13_000_000,
                max_per_request: 2,
            }),
            ..FrontendConfig::default()
        })
        .transfer_cost(TransferCostConfig::default_costed())
        .build()
}

#[test]
fn traced_run_report_is_identical_to_untraced() {
    let w = serving_workload(11);
    let pool = serving_pool();
    let mut a = ClusterPolicy::from_dispatch(DispatchPolicy::LeastLoaded);
    let mut b = ClusterPolicy::from_dispatch(DispatchPolicy::LeastLoaded);
    let untraced = simulate_cluster_with(&w, &mut a, &pool);
    let tracer = RingTracer::new(1 << 16);
    let traced = simulate_cluster_traced(&w, &mut b, &pool, &tracer);
    assert_eq!(untraced, traced, "tracing perturbed the run");
    assert!(!tracer.is_empty());
}

#[test]
fn trace_counters_match_report_counters() {
    let w = serving_workload(12);
    let pool = serving_pool();
    let mut policy = ClusterPolicy::from_dispatch(DispatchPolicy::EarliestDeadlineFirst);
    let tracer = RingTracer::new(1 << 16);
    let report = simulate_cluster_traced(&w, &mut policy, &pool, &tracer);
    assert_eq!(tracer.dropped(), 0, "ring too small for this scenario");

    // Event counters line up with what the report says happened.
    assert_eq!(tracer.kind_count(EventKind::Arrival), 60);
    assert_eq!(
        tracer.kind_count(EventKind::Completion) as usize,
        report.completed_total()
    );
    assert_eq!(
        tracer.kind_count(EventKind::AdmitReject) as usize,
        report.rejected_total()
    );
    assert_eq!(
        tracer.kind_count(EventKind::AdmitDegrade) as usize,
        report.degraded_total()
    );
    assert_eq!(
        tracer.kind_count(EventKind::Admit) + tracer.kind_count(EventKind::AdmitDegrade),
        report.admitted_total() as u64
    );
    assert_eq!(tracer.kind_count(EventKind::Steal), report.serving().steals);
    assert_eq!(
        tracer.kind_count(EventKind::MigrationAccept),
        report.serving().migrations
    );
    // Every offer either lands or is rejected.
    assert_eq!(
        tracer.kind_count(EventKind::MigrationOffer),
        tracer.kind_count(EventKind::MigrationAccept)
            + tracer.kind_count(EventKind::MigrationReject)
    );

    // The per-request timelines replay the run and pass validation.
    tracer.validate().expect("well-formed event stream");
    let timelines = tracer.timelines();
    assert_eq!(timelines.len(), 60, "one timeline per offered request");
    for tl in &timelines {
        if tl.rejected {
            assert_eq!(tl.segments, 0);
            assert!(tl.completion_ns.is_none());
        } else {
            assert!(tl.completion_ns.is_some(), "request {} unfinished", tl.id);
            assert!(tl.segments >= 1);
        }
    }

    // Admission waits in the trace mirror the report's samples.
    let snap = tracer.snapshot();
    let wait = snap
        .histograms
        .iter()
        .find(|(name, _)| name.as_str() == "admission_wait_ns")
        .map(|(_, h)| h.clone())
        .expect("admission wait histogram");
    // Population note: the histogram samples admitted requests only
    // (rejects never dispatch), mirroring ServingStats.
    assert_eq!(
        wait.count as usize,
        report.serving().admission_wait_ns.len()
    );
}

#[test]
fn identical_traced_runs_export_byte_identical_perfetto_json() {
    let w = serving_workload(13);
    let pool = serving_pool();
    let export = |seed_policy: DispatchPolicy| {
        let mut policy = ClusterPolicy::from_dispatch(seed_policy);
        let tracer = RingTracer::new(1 << 16);
        simulate_cluster_traced(&w, &mut policy, &pool, &tracer);
        tracer.perfetto_json()
    };
    let one = export(DispatchPolicy::LeastLoaded);
    let two = export(DispatchPolicy::LeastLoaded);
    assert_eq!(one, two, "trace export is not deterministic");
    // Sanity: the export names the frontend track and parses back.
    assert!(one.contains("\"traceEvents\""));
    let value = serde_json::from_str::<serde::Value>(&one).expect("export parses");
    drop(value);
}

#[test]
fn frontend_events_use_the_frontend_pseudo_node() {
    let w = serving_workload(14);
    let pool = serving_pool();
    let mut policy = ClusterPolicy::from_dispatch(DispatchPolicy::LeastLoaded);
    let tracer = RingTracer::new(1 << 16);
    simulate_cluster_traced(&w, &mut policy, &pool, &tracer);
    for e in tracer.events() {
        match e.kind {
            EventKind::Arrival => assert_eq!(e.node, NODE_FRONTEND),
            EventKind::Segment | EventKind::Preemption | EventKind::Completion => {
                assert!(e.node != NODE_FRONTEND, "execution on the frontend?")
            }
            _ => {}
        }
    }
}
