//! Property tests for fault injection and recovery: the conservation
//! invariant restated over admitted requests (`admitted == completed +
//! failed + reneged`, exactly once) holds under random crash schedules
//! across pool shapes × dispatchers × recovery settings, the
//! per-request retry budget is never exceeded, the traced event stream
//! obeys the health-ordering rules (no dispatch / steal / retry onto a
//! down node, salvage only after a crash), and an empty schedule is
//! bit-exact with a fault-free run.

use std::collections::HashSet;

use proptest::prelude::*;

use dysta_cluster::{
    simulate_cluster_traced, simulate_cluster_with, AcceleratorKind, ClusterBuilder, ClusterConfig,
    ClusterPolicy, DispatchPolicy, FaultConfig, FaultSchedule, FrontendConfig, RecoveryConfig,
};
use dysta_core::Policy;
use dysta_obs::{EventKind, RingTracer};
use dysta_workload::{Scenario, Workload, WorkloadBuilder};

fn workload(rate: f64, slo: f64, n: usize, seed: u64) -> Workload {
    WorkloadBuilder::new(Scenario::MultiCnn)
        .arrival_rate(rate)
        .slo_multiplier(slo)
        .num_requests(n)
        .samples_per_variant(4)
        .seed(seed)
        .build()
}

fn pool(shape: u8, frontend: FrontendConfig, faults: FaultConfig) -> ClusterConfig {
    match shape {
        0 => ClusterBuilder::homogeneous(3, AcceleratorKind::EyerissV2, Policy::Dysta),
        1 => ClusterBuilder::heterogeneous(2, 2, Policy::Dysta),
        // The fig14 capacity-heterogeneous shape: one node per family
        // at half clock.
        _ => ClusterBuilder::heterogeneous(2, 2, Policy::Dysta)
            .node_capacity(1, 0.5)
            .node_capacity(3, 0.5),
    }
    .frontend(frontend)
    .faults(faults)
    .build()
}

fn num_nodes(shape: u8) -> usize {
    match shape {
        0 => 3,
        _ => 4,
    }
}

/// A 2-crash + 1-window schedule derived from three raw samples, kept
/// inside the span an overdriven 60-request stream occupies.
fn schedule(
    nodes: usize,
    crash_node: usize,
    crash_at: u64,
    transient: bool,
    window_node: usize,
    window_at: u64,
) -> FaultSchedule {
    let crash_node = crash_node % nodes;
    let window_node = window_node % nodes;
    let s = if transient {
        FaultSchedule::new().transient_crash(crash_node, crash_at, crash_at + 900_000_000)
    } else {
        FaultSchedule::new().crash(crash_node, crash_at)
    };
    s.brownout(window_node, window_at, window_at + 700_000_000, 0.5)
        .transfer_stall(window_node, window_at, window_at + 500_000_000, 3.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn conservation_holds_exactly_once_under_random_crash_schedules(
        seed in 0u64..500,
        shape in 0u8..3,
        dispatch in prop::sample::select(DispatchPolicy::ALL.to_vec()),
        crash_node in 0usize..4,
        crash_at in 100_000_000u64..3_000_000_000,
        transient in 0u8..2,
        window_node in 0usize..4,
        window_at in 100_000_000u64..2_000_000_000,
        salvage in 0u8..2,
        reneging in 0u8..2,
        max_retries in 0u32..3,
    ) {
        let (transient, salvage, reneging) = (transient == 1, salvage == 1, reneging == 1);
        let n = 60;
        // Overdriven so queues are deep when the crash lands.
        let w = workload(25.0, 2.0, n, seed);
        let faults = FaultConfig {
            schedule: schedule(
                num_nodes(shape), crash_node, crash_at, transient, window_node, window_at,
            ),
            recovery: RecoveryConfig { salvage, max_retries, reneging },
        };
        let mut policy = ClusterPolicy::from_dispatch(dispatch);
        let report =
            simulate_cluster_with(&w, &mut policy, &pool(shape, FrontendConfig::serving(), faults));

        // AdmitAll: everything offered is admitted, and every admitted
        // request resolves exactly one way.
        prop_assert_eq!(report.rejected_total(), 0);
        prop_assert_eq!(report.admitted_total(), n);
        prop_assert_eq!(
            report.admitted_total(),
            report.completed_total() + report.failed_total() + report.reneged_total(),
            "pool conservation broken"
        );
        // Per-node: routed + in − out − failed − reneged == completed.
        for node in report.nodes() {
            prop_assert_eq!(
                node.routed + node.transferred_in
                    - node.transferred_out
                    - node.failed
                    - node.reneged,
                node.report.completed().len(),
                "node {} accounting out of balance",
                node.node_id
            );
        }
        // The serving-level recovery ledger agrees with the per-node
        // counters, and the three outcome id sets partition the stream.
        let recovery = report.recovery();
        prop_assert_eq!(recovery.failed as usize, report.failed_total());
        prop_assert_eq!(recovery.reneged as usize, report.reneged_total());
        prop_assert_eq!(recovery.failed_ids.len(), report.failed_total());
        prop_assert_eq!(recovery.reneged_ids.len(), report.reneged_total());
        prop_assert!(recovery.retries <= recovery.salvaged);
        if !reneging {
            prop_assert_eq!(report.reneged_total(), 0);
        }
        let completed: HashSet<u64> = report.completed().map(|c| c.id).collect();
        let failed: HashSet<u64> = recovery.failed_ids.iter().copied().collect();
        let reneged: HashSet<u64> = recovery.reneged_ids.iter().copied().collect();
        prop_assert_eq!(completed.len(), report.completed_total(), "duplicate completion");
        prop_assert_eq!(failed.len(), recovery.failed_ids.len(), "duplicate failure");
        prop_assert_eq!(reneged.len(), recovery.reneged_ids.len(), "duplicate renege");
        prop_assert!(completed.is_disjoint(&failed));
        prop_assert!(completed.is_disjoint(&reneged));
        prop_assert!(failed.is_disjoint(&reneged));
        let mut all: HashSet<u64> = completed;
        all.extend(&failed);
        all.extend(&reneged);
        prop_assert_eq!(all.len(), n, "an admitted request vanished");

        // Lost work is only ever attributed when something crashed, and
        // a failed or reneged request never counts toward goodput while
        // still widening its denominator.
        prop_assert!(recovery.crashes >= 1);
        prop_assert!(report.goodput() <= report.completed_total());
        prop_assert!((0.0..=1.0).contains(&report.goodput_rate()));
    }

    #[test]
    fn retry_budget_and_health_ordering_hold_in_the_traced_stream(
        seed in 0u64..500,
        dispatch in prop::sample::select(DispatchPolicy::ALL.to_vec()),
        max_retries in 0u32..3,
        first_crash in 200_000_000u64..900_000_000,
    ) {
        // Three staggered transient crashes of the same node: salvaged
        // work that flows back (or stays elsewhere) can be re-crashed,
        // driving requests through the retry budget.
        let w = workload(25.0, 2.0, 50, seed);
        let schedule = FaultSchedule::new()
            .transient_crash(0, first_crash, first_crash + 400_000_000)
            .transient_crash(0, first_crash + 700_000_000, first_crash + 1_000_000_000)
            .crash(1, first_crash + 500_000_000);
        let faults = FaultConfig {
            schedule,
            recovery: RecoveryConfig { salvage: true, max_retries, reneging: false },
        };
        let tracer = RingTracer::new(1 << 18);
        let mut policy = ClusterPolicy::from_dispatch(dispatch);
        let report = simulate_cluster_traced(
            &w,
            &mut policy,
            &pool(0, FrontendConfig::serving(), faults),
            &tracer,
        );
        // The stream obeys the health-ordering rules: no dispatch,
        // steal, migration, or retry onto a down node, salvage only
        // after a crash, no completion after a renege or failure.
        prop_assert!(tracer.validate().is_ok(), "{:?}", tracer.validate());

        // Retry events per request never exceed the configured budget.
        let mut retries = std::collections::HashMap::new();
        for e in tracer.events() {
            if e.kind == EventKind::Retry {
                *retries.entry(e.request).or_insert(0u32) += 1;
            }
        }
        for (id, count) in retries {
            prop_assert!(
                count <= max_retries,
                "request {} retried {} times, budget {}",
                id, count, max_retries
            );
        }
        prop_assert_eq!(
            report.admitted_total(),
            report.completed_total() + report.failed_total() + report.reneged_total()
        );
    }

    #[test]
    fn empty_schedule_is_bit_exact_with_a_fault_free_run(
        seed in 0u64..500,
        shape in 0u8..3,
        dispatch in prop::sample::select(DispatchPolicy::ALL.to_vec()),
        serving in 0u8..2,
    ) {
        let w = workload(12.0, 5.0, 40, seed);
        let frontend = if serving == 1 {
            FrontendConfig::serving()
        } else {
            FrontendConfig::default()
        };
        let mut policy = ClusterPolicy::from_dispatch(dispatch);
        let baseline =
            simulate_cluster_with(&w, &mut policy, &pool(shape, frontend, FaultConfig::default()));
        // An explicitly-constructed empty schedule with salvage armed
        // takes no code path the fault-free run does not.
        let armed = FaultConfig {
            schedule: FaultSchedule::new(),
            recovery: RecoveryConfig { salvage: true, max_retries: 5, reneging: false },
        };
        let mut policy = ClusterPolicy::from_dispatch(dispatch);
        let with_faults = simulate_cluster_with(&w, &mut policy, &pool(shape, frontend, armed));
        prop_assert_eq!(baseline, with_faults);
    }
}
