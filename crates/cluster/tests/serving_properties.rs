//! Property tests for the serving front-end's mechanics: conservation
//! (every admitted request completes exactly once regardless of how it
//! is batched, stolen, or migrated), the migration cap, and the
//! node-level stealing invariants (started tasks are never stolen; a
//! steal strictly shrinks the victim's queue).

use proptest::prelude::*;

use dysta_cluster::{
    simulate_cluster, AcceleratorKind, ClusterBuilder, ClusterConfig, DispatchPolicy,
    FrontendConfig, MigrationConfig, StealConfig,
};
use dysta_core::{ModelInfoLut, Policy};
use dysta_sim::{EngineConfig, NodeEngine};
use dysta_workload::{Scenario, Workload, WorkloadBuilder};

fn workload(scenario: Scenario, rate: f64, n: usize, seed: u64) -> Workload {
    WorkloadBuilder::new(scenario)
        .arrival_rate(rate)
        .num_requests(n)
        .samples_per_variant(4)
        .seed(seed)
        .build()
}

fn pool(shape: u8, frontend: FrontendConfig) -> ClusterConfig {
    match shape {
        0 => ClusterBuilder::homogeneous(3, AcceleratorKind::EyerissV2, Policy::Dysta),
        1 => ClusterBuilder::homogeneous(2, AcceleratorKind::Sanger, Policy::Sjf),
        _ => ClusterBuilder::heterogeneous(2, 2, Policy::Dysta),
    }
    .frontend(frontend)
    .build()
}

fn scenario_for(shape: u8) -> Scenario {
    // Keep traffic plausible for the pool so both halves see load.
    match shape {
        1 => Scenario::MultiAttNn,
        _ => Scenario::MultiCnn,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_admitted_request_completes_exactly_once_across_steals_and_migrations(
        seed in 0u64..1_000,
        shape in 0u8..3,
        dispatch in prop::sample::select(DispatchPolicy::ALL.to_vec()),
        batch in 1usize..9,
        steal_threshold in 1.0f64..3.0,
        max_migrations in 0u32..4,
    ) {
        let n = 60;
        let w = workload(scenario_for(shape), 9.0, n, seed);
        let frontend = FrontendConfig {
            admit_batch: batch,
            admit_interval_ns: 25_000_000,
            steal: Some(StealConfig {
                min_imbalance: steal_threshold,
                period_ns: 7_000_000,
            }),
            migration: Some(MigrationConfig {
                min_imbalance: steal_threshold,
                period_ns: 13_000_000,
                max_per_request: max_migrations,
            }),
            ..FrontendConfig::default()
        };
        let report = simulate_cluster(&w, dispatch.build().as_mut(), &pool(shape, frontend));

        // Conservation: exactly-once completion across the whole pool,
        // no matter how often requests moved.
        prop_assert_eq!(report.completed_total(), n);
        let mut ids: Vec<u64> = report.completed().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), n, "duplicated or lost requests");
        // Completions stay causal and metrics well-formed.
        for c in report.completed() {
            prop_assert!(c.completion_ns >= c.arrival_ns);
        }
        prop_assert!(report.antt() >= 1.0);

        // Per-node accounting balances: requests initially dispatched
        // plus transfers in minus transfers out is exactly what each
        // node completed, and the transfer totals match the pass
        // counters.
        let moved = (report.serving().steals + report.serving().migrations) as usize;
        prop_assert_eq!(
            report.nodes().iter().map(|n| n.transferred_in).sum::<usize>(),
            moved
        );
        prop_assert_eq!(
            report
                .nodes()
                .iter()
                .map(|n| n.transferred_out)
                .sum::<usize>(),
            moved
        );
        for node in report.nodes() {
            prop_assert_eq!(
                node.routed + node.transferred_in - node.transferred_out,
                node.report.completed().len(),
                "node {} accounting out of balance",
                node.node_id
            );
        }

        // The migration cap is a hard bound on every single request.
        prop_assert!(
            report.serving().max_migrations_single_request <= max_migrations,
            "cap {} exceeded: {}",
            max_migrations,
            report.serving().max_migrations_single_request
        );
        if max_migrations == 0 {
            prop_assert_eq!(report.serving().migrations, 0);
        }

        // Admission waits exist for every request and respect the timer.
        prop_assert_eq!(report.serving().admission_wait_ns.len(), n);
        prop_assert!(report
            .serving()
            .admission_wait_ns
            .iter()
            .all(|&wait| wait <= 25_000_000));
    }

    #[test]
    fn steal_never_takes_a_started_task_and_strictly_shrinks_the_source_queue(
        seed in 0u64..1_000,
        barrier_index in 5usize..25,
    ) {
        // Node-level invariant behind the cluster steal pass, exercised
        // directly on the NodeEngine surface the front-end uses.
        let w = workload(Scenario::MultiCnn, 15.0, 30, seed);
        let lut = ModelInfoLut::from_store(w.store());
        let mut node: NodeEngine =
            NodeEngine::new(0, Policy::Dysta.build(), EngineConfig::default(), lut);
        for req in w.requests() {
            node.enqueue(req, w.trace_for(req));
        }
        node.run_until(w.requests()[barrier_index].arrival_ns);

        let started: Vec<u64> = node
            .queued_tasks()
            .filter(|(t, _)| t.started())
            .map(|(t, _)| t.id)
            .collect();
        let unstarted: Vec<u64> = node.unstarted_tasks().map(|(t, _)| t.id).collect();

        // Started tasks are never stealable.
        for id in started {
            let before = node.queue_len();
            prop_assert!(node.take_unstarted(id).is_none());
            prop_assert_eq!(node.queue_len(), before, "failed steal must not change the queue");
        }
        // Every successful steal shrinks the queue by exactly one and
        // yields an unstarted task.
        for id in unstarted {
            let before = node.queue_len();
            let taken = node.take_unstarted(id);
            prop_assert!(taken.is_some());
            let taken = taken.unwrap();
            prop_assert!(!taken.task().started());
            prop_assert_eq!(taken.task().id, id);
            prop_assert_eq!(node.queue_len(), before - 1);
        }
    }
}
