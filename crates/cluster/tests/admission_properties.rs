//! Property tests for admission control: rejected requests never enter
//! the pool (no completion, no transfer can involve them), the serving
//! conservation invariant restated over *admitted* requests holds
//! across pool shapes × dispatchers × steal/migration settings, the
//! default `AdmitAll` bundle is bit-exact with the admission-free
//! engine, and the `NodeView` deadline summaries never fold the
//! `u64::MAX` no-deadline sentinel into their slack arithmetic.

use std::cell::RefCell;
use std::collections::HashSet;

use proptest::prelude::*;

use dysta_cluster::{
    simulate_cluster, simulate_cluster_with, AcceleratorKind, ClusterBuilder, ClusterConfig,
    ClusterPolicy, DispatchContext, DispatchPolicy, Dispatcher, FrontendConfig,
    InfeasibleEverywhere, JoinShortestQueue, SlackLoadShedding,
};
use dysta_core::Policy;
use dysta_workload::{Request, Scenario, Workload, WorkloadBuilder};

fn workload(rate: f64, slo: f64, n: usize, seed: u64) -> Workload {
    WorkloadBuilder::new(Scenario::MultiCnn)
        .arrival_rate(rate)
        .slo_multiplier(slo)
        .num_requests(n)
        .samples_per_variant(4)
        .seed(seed)
        .build()
}

fn pool(shape: u8, frontend: FrontendConfig) -> ClusterConfig {
    match shape {
        0 => ClusterBuilder::homogeneous(3, AcceleratorKind::EyerissV2, Policy::Dysta),
        1 => ClusterBuilder::heterogeneous(2, 2, Policy::Dysta),
        // The fig14 capacity-heterogeneous shape: one node per family
        // at half clock.
        _ => ClusterBuilder::heterogeneous(2, 2, Policy::Dysta)
            .node_capacity(1, 0.5)
            .node_capacity(3, 0.5),
    }
    .frontend(frontend)
    .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn rejected_requests_never_complete_and_admission_conserves(
        seed in 0u64..500,
        shape in 0u8..3,
        dispatch in prop::sample::select(DispatchPolicy::ALL.to_vec()),
        serving in 0u8..2,
        batch in 1usize..6,
        slo in 1.5f64..4.0,
        shed in 0u8..2,
    ) {
        let (serving, shed) = (serving == 1, shed == 1);
        let n = 60;
        // Tight SLOs at an overdriven rate so real rejections happen.
        let w = workload(18.0, slo, n, seed);
        let frontend = FrontendConfig {
            admit_batch: batch,
            admit_interval_ns: 25_000_000,
            ..if serving {
                FrontendConfig::serving()
            } else {
                FrontendConfig::default()
            }
        };
        let mut policy = ClusterPolicy::from_dispatch(dispatch).with_admission(if shed {
            Box::new(SlackLoadShedding::new())
        } else {
            Box::new(InfeasibleEverywhere::new())
        });
        let report = simulate_cluster_with(&w, &mut policy, &pool(shape, frontend));

        let rejected = report.rejected_total();
        let admitted = report.admitted_total();
        let degraded = report.degraded_total();

        // Every offered request is either admitted or rejected, and the
        // serving stats agree with the per-node counters.
        prop_assert_eq!(admitted + rejected, n);
        prop_assert_eq!(report.serving().rejected_ids.len(), rejected);
        prop_assert_eq!(report.serving().degraded_slo_ns.len(), degraded);
        prop_assert!(degraded <= admitted);

        // admitted == routed == completed: what the front-end let in is
        // exactly what the pool served, exactly once.
        prop_assert_eq!(report.completed_total(), admitted);
        let completed_ids: HashSet<u64> = report.completed().map(|c| c.id).collect();
        prop_assert_eq!(completed_ids.len(), admitted, "duplicate completion");

        // A rejected request appears in no node's completions...
        for id in &report.serving().rejected_ids {
            prop_assert!(
                !completed_ids.contains(id),
                "rejected request {} completed",
                id
            );
        }
        // ...and no transfer can have involved one: transfers only move
        // requests queued on nodes, and the counters balance exactly
        // over admitted work.
        let moved = (report.serving().steals + report.serving().migrations) as usize;
        prop_assert_eq!(
            report.nodes().iter().map(|nd| nd.transferred_in).sum::<usize>(),
            moved
        );
        prop_assert_eq!(
            report.nodes().iter().map(|nd| nd.transferred_out).sum::<usize>(),
            moved
        );
        // The conservation invariant, restated over admitted requests.
        for node in report.nodes() {
            prop_assert_eq!(
                node.routed + node.transferred_in - node.transferred_out,
                node.report.completed().len(),
                "node {} accounting out of balance",
                node.node_id
            );
        }

        // One admission-wait sample per admitted request, none for the
        // rejected ones.
        prop_assert_eq!(report.serving().admission_wait_ns.len(), admitted);

        // Goodput counts a subset of completions and the rate is a
        // well-formed fraction of offered work.
        prop_assert!(report.goodput() <= report.completed_total());
        prop_assert!((0.0..=1.0).contains(&report.goodput_rate()));
    }

    #[test]
    fn default_admit_all_bundle_is_bit_exact_with_simulate_cluster(
        seed in 0u64..500,
        dispatch in prop::sample::select(DispatchPolicy::ALL.to_vec()),
    ) {
        let w = workload(12.0, 5.0, 40, seed);
        let config = pool(1, FrontendConfig::serving());
        let direct = simulate_cluster(&w, dispatch.build().as_mut(), &config);
        let mut bundle = ClusterPolicy::from_dispatch(dispatch);
        let with_policy = simulate_cluster_with(&w, &mut bundle, &config);
        prop_assert_eq!(direct, with_policy);
    }
}

/// A pass-through dispatcher that records the deadline summaries of
/// every `NodeView` it is shown, so the engine's queue summarization is
/// observable from the public API.
#[derive(Default)]
struct SummaryProbe {
    inner: JoinShortestQueue,
    seen: RefCell<Vec<(u64, f64)>>,
}

impl Dispatcher for SummaryProbe {
    fn name(&self) -> &str {
        "summary-probe"
    }

    fn peek(&self, request: &Request, ctx: &DispatchContext<'_>) -> usize {
        let mut seen = self.seen.borrow_mut();
        for node in ctx.nodes {
            seen.push((node.earliest_deadline_ns, node.total_slack_ns));
        }
        self.inner.peek(request, ctx)
    }
}

/// Re-tags every `stride`-th request as deadline-free (`slo_ns ==
/// u64::MAX`), keeping arrival order and dense ids.
fn with_deadline_free_mix(w: &Workload, stride: usize) -> Workload {
    let requests: Vec<Request> = w
        .requests()
        .iter()
        .map(|r| {
            if (r.id as usize).is_multiple_of(stride) {
                Request {
                    slo_ns: u64::MAX,
                    ..*r
                }
            } else {
                *r
            }
        })
        .collect();
    Workload::from_parts(requests, w.store().clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn deadline_summaries_never_fold_in_the_no_deadline_sentinel(
        seed in 0u64..200,
        stride in 2usize..5,
        slo in 1.5f64..6.0,
    ) {
        // A queue mixing deadline-free and tight-deadline requests: the
        // observed total_slack_ns must stay in the range finite
        // deadlines can produce. Folding even one u64::MAX sentinel in
        // would push it past 1e18.
        let w = with_deadline_free_mix(&workload(18.0, slo, 40, seed), stride);
        // The latest deadline any *deadlined* request carries: a
        // non-sentinel summary must never exceed it.
        let max_real_deadline = w
            .requests()
            .iter()
            .filter(|r| r.slo_ns != u64::MAX)
            .map(Request::deadline_ns)
            .max()
            .expect("stride >= 2 leaves deadlined requests");
        prop_assert!(max_real_deadline < u64::MAX, "workload SLOs are finite");
        let mut probe = SummaryProbe::default();
        let config = pool(2, FrontendConfig::default());
        let report = simulate_cluster(&w, &mut probe, &config);
        prop_assert_eq!(report.completed_total(), 40);
        let seen = probe.seen.into_inner();
        prop_assert!(!seen.is_empty());
        for (earliest, slack) in &seen {
            prop_assert!(
                slack.abs() < 1e18,
                "sentinel leaked into total_slack_ns: {}",
                slack
            );
            prop_assert!(slack.is_finite());
            // The earliest-deadline summary is either the sentinel (no
            // deadlined request queued) or one of the real deadlines —
            // never a partially-overflowed in-between value.
            prop_assert!(
                *earliest == u64::MAX || *earliest <= max_real_deadline,
                "earliest_deadline_ns {} is neither sentinel nor a real deadline",
                earliest
            );
        }
    }

    #[test]
    fn all_deadline_free_queues_report_sentinel_and_zero_slack(
        seed in 0u64..200,
    ) {
        // Every request deadline-free: the summaries must be exactly
        // the drained-queue defaults (sentinel deadline, zero slack) at
        // every decision point — a deadline-free queue exerts no SLO
        // pressure.
        let w = with_deadline_free_mix(&workload(18.0, 3.0, 30, seed), 1);
        let mut probe = SummaryProbe::default();
        let config = pool(0, FrontendConfig::default());
        let report = simulate_cluster(&w, &mut probe, &config);
        prop_assert_eq!(report.completed_total(), 30);
        prop_assert_eq!(report.violation_rate(), 0.0);
        for (earliest, slack) in probe.seen.into_inner() {
            prop_assert_eq!(earliest, u64::MAX);
            prop_assert_eq!(slack, 0.0);
        }
    }

    #[test]
    fn infeasible_everywhere_never_rejects_deadline_free_requests(
        seed in 0u64..200,
        stride in 1usize..4,
    ) {
        // Deadline-free requests always project positive slack, so the
        // reject-doomed policy must admit them no matter how overdriven
        // the pool is.
        let w = with_deadline_free_mix(&workload(24.0, 1.5, 40, seed), stride);
        let mut policy = ClusterPolicy::from_dispatch(DispatchPolicy::EarliestDeadlineFirst)
            .with_admission(Box::new(InfeasibleEverywhere::new()));
        let report = simulate_cluster_with(&w, &mut policy, &pool(2, FrontendConfig::default()));
        let free_ids: HashSet<u64> = w
            .requests()
            .iter()
            .filter(|r| r.slo_ns == u64::MAX)
            .map(|r| r.id)
            .collect();
        for id in &report.serving().rejected_ids {
            prop_assert!(!free_ids.contains(id), "deadline-free request {} rejected", id);
        }
        // Deadline-free completions can never violate.
        let completed_free_violations = report
            .completed()
            .filter(|c| free_ids.contains(&c.id))
            .filter(|c| c.violated())
            .count();
        prop_assert_eq!(completed_free_violations, 0);
    }
}
