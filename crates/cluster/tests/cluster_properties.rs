//! Cluster-level integration tests: single-node parity, determinism,
//! and the dispatch-policy orderings the bench sweep reports.

use dysta_cluster::{
    balanced_mixed_serving_mix, simulate_cluster, AcceleratorKind, ClusterBuilder, ClusterConfig,
    DispatchPolicy, FrontendConfig, MigrationConfig, StealConfig, TransferCostConfig,
};
use dysta_core::Policy;
use dysta_sim::{simulate, EngineConfig};
use dysta_workload::{Scenario, Workload, WorkloadBuilder};

fn workload(scenario: Scenario, rate: f64, n: usize, seed: u64) -> Workload {
    WorkloadBuilder::new(scenario)
        .arrival_rate(rate)
        .num_requests(n)
        .samples_per_variant(8)
        .seed(seed)
        .build()
}

/// The heterogeneous serving mix: CNN perception plus AttNN assistant
/// traffic on one shared pool, balanced per
/// [`balanced_mixed_serving_mix`].
fn mixed_workload(rate: f64, n: usize, seed: u64) -> Workload {
    WorkloadBuilder::from_mix(balanced_mixed_serving_mix())
        .arrival_rate(rate)
        .num_requests(n)
        .samples_per_variant(8)
        .seed(seed)
        .build()
}

#[test]
fn one_node_cluster_reproduces_single_node_simulate_exactly() {
    for (scenario, kind) in [
        (Scenario::MultiCnn, AcceleratorKind::EyerissV2),
        (Scenario::MultiAttNn, AcceleratorKind::Sanger),
    ] {
        let w = workload(scenario, 3.0, 60, 11);
        for policy in [Policy::Fcfs, Policy::Sjf, Policy::Dysta, Policy::Oracle] {
            let single = simulate(&w, policy.build().as_mut(), &EngineConfig::default());
            for dispatch in DispatchPolicy::ALL {
                let pool = ClusterConfig::homogeneous(1, kind, policy);
                let cluster = simulate_cluster(&w, dispatch.build().as_mut(), &pool);
                assert_eq!(cluster.num_nodes(), 1);
                let node = &cluster.nodes()[0];
                assert_eq!(
                    node.report.completed(),
                    single.completed(),
                    "{policy}/{dispatch} on {scenario:?}"
                );
                assert_eq!(node.report.preemptions(), single.preemptions());
                assert_eq!(
                    node.report.scheduler_invocations(),
                    single.scheduler_invocations()
                );
            }
        }
    }
}

#[test]
fn one_node_cluster_with_serving_frontend_stays_bit_exact_with_simulate() {
    // With one node there is no peer to steal from or migrate to, and
    // admission batch 1 dispatches at arrival — the full serving stack
    // must reproduce the single-accelerator engine exactly.
    let w = workload(Scenario::MultiCnn, 3.0, 60, 17);
    let single = simulate(&w, Policy::Dysta.build().as_mut(), &EngineConfig::default());
    let pool = ClusterBuilder::homogeneous(1, AcceleratorKind::EyerissV2, Policy::Dysta)
        .frontend(FrontendConfig::serving())
        .build();
    let cluster = simulate_cluster(&w, DispatchPolicy::RoundRobin.build().as_mut(), &pool);
    assert_eq!(cluster.nodes()[0].report.completed(), single.completed());
    assert_eq!(cluster.serving().steals, 0);
    assert_eq!(cluster.serving().migrations, 0);
    assert!(cluster
        .serving()
        .admission_wait_ns
        .iter()
        .all(|&wait| wait == 0));
}

#[test]
fn stealing_reduces_imbalance_without_antt_regression() {
    // The acceptance scenario: affinity dispatch piles CNN-only traffic
    // onto the Eyeriss half of a heterogeneous pool; with stealing on,
    // the idle Sanger nodes absorb queued work at the mismatch penalty.
    let w = workload(Scenario::MultiCnn, 12.0, 200, 42);
    let baseline_pool = ClusterConfig::heterogeneous(2, 2, Policy::Dysta);
    let steal_pool = ClusterBuilder::heterogeneous(2, 2, Policy::Dysta)
        .frontend(FrontendConfig {
            steal: Some(StealConfig::default()),
            ..FrontendConfig::default()
        })
        .build();
    let baseline = simulate_cluster(
        &w,
        DispatchPolicy::SparsityAffinity.build().as_mut(),
        &baseline_pool,
    );
    let stealing = simulate_cluster(
        &w,
        DispatchPolicy::SparsityAffinity.build().as_mut(),
        &steal_pool,
    );
    assert!(
        stealing.serving().steals > 0,
        "pool imbalance must trigger steals"
    );
    assert!(
        stealing.load_imbalance() < baseline.load_imbalance(),
        "steal imbalance {} vs baseline {}",
        stealing.load_imbalance(),
        baseline.load_imbalance()
    );
    assert!(
        stealing.antt() <= baseline.antt(),
        "steal ANTT {} vs baseline {}",
        stealing.antt(),
        baseline.antt()
    );
    assert!(
        stealing.turnaround_percentile_ns(99.0) <= baseline.turnaround_percentile_ns(99.0),
        "stealing must not lengthen the tail"
    );
}

#[test]
fn costed_transfers_throttle_movement_but_keep_the_pool_balanced() {
    // The transfer-cost acceptance scenario: with the default cost model
    // and the re-tuned (costed) thresholds, steal and migration counts
    // drop vs free transfers — marginal moves no longer pay for
    // themselves — while load imbalance stays well below the no-serving
    // baseline, and every fetch is accounted on the nodes that paid it.
    let w = workload(Scenario::MultiCnn, 12.0, 200, 42);
    let affinity = || DispatchPolicy::SparsityAffinity.build();
    let baseline = simulate_cluster(
        &w,
        affinity().as_mut(),
        &ClusterConfig::heterogeneous(2, 2, Policy::Dysta),
    );
    let free = simulate_cluster(
        &w,
        affinity().as_mut(),
        &ClusterBuilder::heterogeneous(2, 2, Policy::Dysta)
            .frontend(FrontendConfig::serving())
            .build(),
    );
    let costed = simulate_cluster(
        &w,
        affinity().as_mut(),
        &ClusterBuilder::heterogeneous(2, 2, Policy::Dysta)
            .frontend(FrontendConfig::serving_costed())
            .transfer_cost(TransferCostConfig::default_costed())
            .build(),
    );
    assert_eq!(
        free.serving().transfer_cost_ns,
        0,
        "free moves cost nothing"
    );
    assert!(
        costed.serving().steals > 0,
        "imbalance must still trigger steals"
    );
    assert!(
        costed.serving().steals < free.serving().steals,
        "costed steals {} vs free {}",
        costed.serving().steals,
        free.serving().steals
    );
    assert!(
        costed.serving().migrations < free.serving().migrations,
        "costed migrations {} vs free {}",
        costed.serving().migrations,
        free.serving().migrations
    );
    assert!(
        costed.load_imbalance() < baseline.load_imbalance(),
        "costed imbalance {} vs no-serving {}",
        costed.load_imbalance(),
        baseline.load_imbalance()
    );
    // Fetch accounting: the serving total matches the per-node sum, and
    // only nodes that received transfers paid anything.
    assert!(costed.serving().transfer_cost_ns > 0);
    assert_eq!(
        costed.total_transfer_cost_ns(),
        costed.serving().transfer_cost_ns
    );
    for node in costed.nodes() {
        if node.transferred_in == 0 {
            assert_eq!(node.transfer_fetch_ns, 0, "node {}", node.node_id);
        }
        assert!(node.busy_ns >= node.transfer_fetch_ns);
    }
}

#[test]
fn admission_batching_records_queue_waits_and_conserves_requests() {
    let w = workload(Scenario::MultiCnn, 12.0, 120, 7);
    let pool = ClusterBuilder::homogeneous(4, AcceleratorKind::EyerissV2, Policy::Dysta)
        .frontend(FrontendConfig {
            admit_batch: 6,
            ..FrontendConfig::default()
        })
        .build();
    let report = simulate_cluster(
        &w,
        DispatchPolicy::JoinShortestQueue.build().as_mut(),
        &pool,
    );
    assert_eq!(report.completed_total(), 120);
    let waits = &report.serving().admission_wait_ns;
    assert_eq!(waits.len(), 120);
    // Batching makes most requests wait for the batch to fill; the
    // request closing each batch is dispatched instantly.
    assert!(waits.iter().any(|&wait| wait > 0));
    assert!(waits.iter().filter(|&&wait| wait == 0).count() >= 120 / 6);
    assert!(report.serving().mean_admission_wait_ns() > 0.0);
}

#[test]
fn batched_dispatch_delays_execution_to_the_dispatch_instant() {
    // admit_batch = n on a 1-node pool: every request is dispatched at
    // the last arrival, so nothing may start — let alone complete —
    // before that instant, and the recorded admission waits are real
    // turnaround delay rather than bookkeeping.
    let w = workload(Scenario::MultiCnn, 12.0, 60, 7);
    let last_arrival = w.requests().last().unwrap().arrival_ns;
    let immediate_pool = ClusterConfig::homogeneous(1, AcceleratorKind::EyerissV2, Policy::Dysta);
    let batched_pool = ClusterBuilder::from_nodes(immediate_pool.nodes.clone())
        .frontend(FrontendConfig {
            admit_batch: 60,
            ..FrontendConfig::default()
        })
        .build();
    let immediate = simulate_cluster(
        &w,
        DispatchPolicy::RoundRobin.build().as_mut(),
        &immediate_pool,
    );
    let batched = simulate_cluster(
        &w,
        DispatchPolicy::RoundRobin.build().as_mut(),
        &batched_pool,
    );
    assert!(batched.completed().all(|c| c.completion_ns >= last_arrival));
    assert!(batched.serving().mean_admission_wait_ns() > 0.0);
    assert!(
        batched.antt() > immediate.antt(),
        "admission wait must show up in turnaround: batched {} vs immediate {}",
        batched.antt(),
        immediate.antt()
    );
}

#[test]
fn rejected_migration_candidates_do_not_charge_stateful_dispatchers() {
    use dysta_cluster::{DispatchContext, Dispatcher, RoundRobin};
    use dysta_workload::Request;

    // Round-robin that counts how often its mutable state is charged.
    struct CountingRoundRobin {
        inner: RoundRobin,
        dispatches: u64,
    }
    impl Dispatcher for CountingRoundRobin {
        fn name(&self) -> &str {
            "counting-round-robin"
        }
        fn peek(&self, request: &Request, ctx: &DispatchContext<'_>) -> usize {
            self.inner.peek(request, ctx)
        }
        fn dispatch(&mut self, request: &Request, ctx: &DispatchContext<'_>) -> usize {
            self.dispatches += 1;
            self.inner.dispatch(request, ctx)
        }
    }

    // CNN-only traffic on a heterogeneous pool under round-robin leaves
    // the Sanger half persistently behind (mismatch slowdown), so the
    // aggressive migration pass keeps evaluating candidates — most of
    // which it rejects.
    let w = workload(Scenario::MultiCnn, 12.0, 120, 7);
    let pool = ClusterBuilder::heterogeneous(2, 2, Policy::Dysta)
        .frontend(FrontendConfig {
            migration: Some(MigrationConfig {
                min_imbalance: 1.0,
                period_ns: 5_000_000,
                max_per_request: 2,
            }),
            ..FrontendConfig::default()
        })
        .build();
    let mut dispatcher = CountingRoundRobin {
        inner: RoundRobin::new(),
        dispatches: 0,
    };
    let report = simulate_cluster(&w, &mut dispatcher, &pool);
    assert!(report.serving().migrations > 0, "pass must move something");
    // State is charged once per admitted request plus once per *applied*
    // migration; rejected re-offers go through the read-only peek path.
    assert_eq!(
        dispatcher.dispatches,
        120 + report.serving().migrations,
        "rejected candidates must not advance the cursor"
    );
}

#[test]
fn admission_timer_bounds_queue_waits() {
    // A huge batch size with a Δt timer: every request waits at most Δt.
    let interval = 40_000_000u64;
    let w = workload(Scenario::MultiCnn, 12.0, 120, 7);
    let pool = ClusterBuilder::homogeneous(4, AcceleratorKind::EyerissV2, Policy::Dysta)
        .frontend(FrontendConfig {
            admit_batch: usize::MAX,
            admit_interval_ns: interval,
            ..FrontendConfig::default()
        })
        .build();
    let report = simulate_cluster(
        &w,
        DispatchPolicy::JoinShortestQueue.build().as_mut(),
        &pool,
    );
    assert_eq!(report.completed_total(), 120);
    assert!(report
        .serving()
        .admission_wait_ns
        .iter()
        .all(|&wait| wait <= interval));
    assert!(report.serving().mean_admission_wait_ns() > 0.0);
}

#[test]
fn identical_seeds_produce_identical_cluster_reports() {
    let w1 = mixed_workload(30.0, 150, 42);
    let w2 = mixed_workload(30.0, 150, 42);
    let pools = [
        ClusterConfig::heterogeneous(2, 2, Policy::Dysta),
        // The full serving stack (batching + stealing + migration) must
        // be just as deterministic as immediate dispatch.
        ClusterBuilder::heterogeneous(2, 2, Policy::Dysta)
            .frontend(FrontendConfig {
                admit_batch: 4,
                steal: Some(StealConfig::default()),
                migration: Some(MigrationConfig::default()),
                ..FrontendConfig::default()
            })
            .build(),
    ];
    for pool in &pools {
        for dispatch in DispatchPolicy::ALL {
            let a = simulate_cluster(&w1, dispatch.build().as_mut(), pool);
            let b = simulate_cluster(&w2, dispatch.build().as_mut(), pool);
            assert_eq!(a, b, "{dispatch}");
        }
    }
}

#[test]
fn every_dispatch_policy_serves_every_pool_shape() {
    let pools = [
        (
            ClusterConfig::homogeneous(4, AcceleratorKind::EyerissV2, Policy::Dysta),
            workload(Scenario::MultiCnn, 12.0, 120, 5),
        ),
        (
            ClusterConfig::homogeneous(5, AcceleratorKind::Sanger, Policy::Dysta),
            workload(Scenario::MultiAttNn, 150.0, 120, 5),
        ),
        (
            ClusterConfig::heterogeneous(2, 2, Policy::Dysta),
            mixed_workload(30.0, 120, 5),
        ),
    ];
    for (pool, w) in &pools {
        for dispatch in DispatchPolicy::ALL {
            let report = simulate_cluster(w, dispatch.build().as_mut(), pool);
            assert_eq!(report.completed_total(), 120, "{dispatch}");
            // Exactly-once completion across the whole pool.
            let mut ids: Vec<u64> = report.completed().map(|c| c.id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 120, "{dispatch}: duplicated or lost requests");
            let routed: usize = report.nodes().iter().map(|n| n.routed).sum();
            assert_eq!(routed, 120);
            assert!(report.antt() >= 1.0, "{dispatch}");
            assert!((0.0..=1.0).contains(&report.violation_rate()));
            assert!(report.throughput_inf_s() > 0.0);
            assert!(report.load_imbalance() >= 1.0);
            assert!(report
                .per_node_utilization()
                .iter()
                .all(|u| (0.0..=1.0).contains(u)));
        }
    }
}

#[test]
fn informed_dispatch_beats_round_robin_on_homogeneous_pools() {
    // Seed-averaged at the paper's per-node operating points (3 samples/s
    // per CNN node, 30 samples/s per Sanger node) — the comparison the
    // bench sweep prints.
    let configs = [
        (Scenario::MultiCnn, AcceleratorKind::EyerissV2, 3.0),
        (Scenario::MultiAttNn, AcceleratorKind::Sanger, 30.0),
    ];
    let nodes = 4;
    for (scenario, kind, per_node_rate) in configs {
        let antt = |dispatch: DispatchPolicy| {
            let mut total = 0.0;
            for seed in 0..5u64 {
                let w = workload(
                    scenario,
                    per_node_rate * nodes as f64,
                    250,
                    seed * 7919 + 13,
                );
                let pool = ClusterConfig::homogeneous(nodes, kind, Policy::Dysta);
                total += simulate_cluster(&w, dispatch.build().as_mut(), &pool).antt();
            }
            total / 5.0
        };
        let rr = antt(DispatchPolicy::RoundRobin);
        let jsq = antt(DispatchPolicy::JoinShortestQueue);
        let affinity = antt(DispatchPolicy::SparsityAffinity);
        assert!(jsq < rr, "{scenario:?}: jsq {jsq} vs rr {rr}");
        assert!(
            affinity < rr,
            "{scenario:?}: affinity {affinity} vs rr {rr}"
        );
    }
}

#[test]
fn affinity_wins_on_heterogeneous_pools() {
    // On a mixed Eyeriss+Sanger pool serving mixed traffic, family-aware
    // routing avoids the mismatch penalty that backlog-only policies
    // keep paying.
    let antt = |dispatch: DispatchPolicy| {
        let mut total = 0.0;
        for seed in 0..5u64 {
            // The bench sweep's operating point: 10 samples/s per node.
            let w = mixed_workload(40.0, 250, seed * 104_729 + 7);
            let pool = ClusterConfig::heterogeneous(2, 2, Policy::Dysta);
            total += simulate_cluster(&w, dispatch.build().as_mut(), &pool).antt();
        }
        total / 5.0
    };
    let rr = antt(DispatchPolicy::RoundRobin);
    let affinity = antt(DispatchPolicy::SparsityAffinity);
    assert!(affinity < rr, "affinity {affinity} vs rr {rr}");
}

#[test]
fn mismatched_pool_pays_the_slowdown() {
    // The same CNN workload on an all-Sanger pool must turn around
    // slower than on an all-Eyeriss pool of the same size.
    let w = workload(Scenario::MultiCnn, 6.0, 100, 21);
    let native = ClusterConfig::homogeneous(2, AcceleratorKind::EyerissV2, Policy::Dysta);
    let foreign = ClusterConfig::homogeneous(2, AcceleratorKind::Sanger, Policy::Dysta);
    let native = simulate_cluster(
        &w,
        DispatchPolicy::JoinShortestQueue.build().as_mut(),
        &native,
    );
    let foreign = simulate_cluster(
        &w,
        DispatchPolicy::JoinShortestQueue.build().as_mut(),
        &foreign,
    );
    assert!(
        foreign.antt() > native.antt(),
        "foreign {} vs native {}",
        foreign.antt(),
        native.antt()
    );
}

#[test]
fn adding_nodes_improves_turnaround() {
    let w = workload(Scenario::MultiCnn, 12.0, 150, 31);
    let antt = |n: usize| {
        let pool = ClusterConfig::homogeneous(n, AcceleratorKind::EyerissV2, Policy::Dysta);
        simulate_cluster(
            &w,
            DispatchPolicy::JoinShortestQueue.build().as_mut(),
            &pool,
        )
        .antt()
    };
    let two = antt(2);
    let eight = antt(8);
    assert!(eight < two, "8 nodes {eight} vs 2 nodes {two}");
}
