//! Phase-1 trace persistence across the crate boundary: generate with
//! real accelerator models, save, load, and rebuild identical LUTs.

use std::path::PathBuf;

use dysta::core::ModelInfoLut;
use dysta::models::ModelId;
use dysta::sparsity::SparsityPattern;
use dysta::trace::{SparseModelSpec, TraceGenerator, TraceStore};

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dysta-integration");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn full_store_roundtrip_preserves_luts() {
    let generator = TraceGenerator::default();
    let mut store = TraceStore::new();
    let specs = [
        SparseModelSpec::new(ModelId::Bert, SparsityPattern::Dense, 0.0),
        SparseModelSpec::new(ModelId::ResNet50, SparsityPattern::RandomPointwise, 0.8),
        SparseModelSpec::new(ModelId::Vgg16, SparsityPattern::ChannelWise, 0.6),
        SparseModelSpec::new(
            ModelId::MobileNet,
            SparsityPattern::BlockNm { n: 2, m: 4 },
            0.5,
        ),
    ];
    for spec in &specs {
        store.insert(generator.generate(spec, 6, 0));
    }
    let path = temp_path("roundtrip.json");
    store.save(&path).expect("save");
    let loaded = TraceStore::load(&path).expect("load");
    std::fs::remove_file(&path).ok();

    assert_eq!(store, loaded);
    let lut_a = ModelInfoLut::from_store(&store);
    let lut_b = ModelInfoLut::from_store(&loaded);
    for spec in &specs {
        assert_eq!(lut_a.expect(spec), lut_b.expect(spec));
    }
}

#[test]
fn pattern_variants_have_distinct_latencies() {
    // The pattern-aware LUT is the static scheduler's edge: the same
    // model under different patterns must profile differently.
    let generator = TraceGenerator::default();
    let random = generator.generate(
        &SparseModelSpec::new(ModelId::ResNet50, SparsityPattern::RandomPointwise, 0.8),
        8,
        0,
    );
    let channel = generator.generate(
        &SparseModelSpec::new(ModelId::ResNet50, SparsityPattern::ChannelWise, 0.8),
        8,
        0,
    );
    let rel = (random.avg_latency_ns() - channel.avg_latency_ns()).abs() / random.avg_latency_ns();
    assert!(rel > 0.05, "patterns indistinguishable: {rel}");
}
