//! Golden-report regression suite: the quick-mode `table05_end2end` and
//! `cluster_sweep` experiment configurations, run in-process and pinned
//! byte-for-byte against recorded JSON fixtures under `tests/golden/`.
//!
//! Every run of the simulator is a pure function of its seed, so *exact*
//! equality is meaningful: any scheduling, dispatch, or front-end change
//! that shifts a single completion time shows up as a fixture diff. To
//! accept an intentional behavior change, regenerate the fixtures with
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_reports
//! ```
//!
//! and review the diff like any other code change.

use serde::{Deserialize, Serialize};

use dysta::cluster::{
    simulate_cluster, ClusterConfig, DispatchPolicy, FrontendConfig, MigrationConfig, StealConfig,
};
use dysta::core::{DystaConfig, Policy};
use dysta::workload::{Scenario, WorkloadBuilder};
use dysta_bench::{compare_policies, Scale};

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares (or, under `UPDATE_GOLDEN=1`, records) one serialized report
/// against its fixture.
fn check_golden(name: &str, current: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir golden");
        std::fs::write(&path, format!("{current}\n")).expect("write fixture");
        return;
    }
    let recorded = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); record it with \
             `UPDATE_GOLDEN=1 cargo test --test golden_reports`",
            path.display()
        )
    });
    assert_eq!(
        current,
        recorded.trim_end(),
        "\n`{name}` drifted from its golden fixture. If the change is \
         intentional, regenerate with `UPDATE_GOLDEN=1 cargo test --test \
         golden_reports` and commit the diff."
    );
}

// --- table05_end2end (quick mode) ----------------------------------------

#[derive(Debug, Serialize, Deserialize, PartialEq)]
struct PolicyRow {
    scenario: String,
    policy: String,
    antt: f64,
    violation_rate: f64,
    throughput_inf_s: f64,
}

#[test]
fn golden_table05_end2end_quick() {
    let scale = Scale::quick();
    let mut rows = Vec::new();
    for (name, scenario, rate) in [
        ("multi_attnn", Scenario::MultiAttNn, 30.0),
        ("multi_cnn", Scenario::MultiCnn, 3.0),
    ] {
        for row in compare_policies(
            scenario,
            rate,
            10.0,
            scale,
            &Policy::TABLE5,
            DystaConfig::default(),
        ) {
            rows.push(PolicyRow {
                scenario: name.to_string(),
                policy: row.policy.name().to_string(),
                antt: row.metrics.antt,
                violation_rate: row.metrics.violation_rate,
                throughput_inf_s: row.metrics.throughput_inf_s,
            });
        }
    }
    let json = serde_json::to_string(&rows).expect("rows serialize");
    check_golden("table05_end2end.json", &json);
}

// --- cluster_sweep + serving front-end (quick mode) -----------------------

#[derive(Debug, Serialize, Deserialize, PartialEq)]
struct ClusterCell {
    pool: String,
    nodes: usize,
    dispatch: String,
    frontend: String,
    antt: f64,
    violation_rate: f64,
    throughput_inf_s: f64,
    load_imbalance: f64,
    p50_ns: u64,
    p90_ns: u64,
    p99_ns: u64,
    steals: u64,
    migrations: u64,
    mean_admission_wait_ns: f64,
}

fn cell(
    pool_name: &str,
    config: &ClusterConfig,
    dispatch: DispatchPolicy,
    frontend_name: &str,
    workload: &dysta::workload::Workload,
) -> ClusterCell {
    let report = simulate_cluster(workload, dispatch.build().as_mut(), config);
    let p = report.latency_percentiles();
    ClusterCell {
        pool: pool_name.to_string(),
        nodes: config.len(),
        dispatch: dispatch.name().to_string(),
        frontend: frontend_name.to_string(),
        antt: report.antt(),
        violation_rate: report.violation_rate(),
        throughput_inf_s: report.throughput_inf_s(),
        load_imbalance: report.load_imbalance(),
        p50_ns: p.p50_ns,
        p90_ns: p.p90_ns,
        p99_ns: p.p99_ns,
        steals: report.serving().steals,
        migrations: report.serving().migrations,
        mean_admission_wait_ns: report.serving().mean_admission_wait_ns(),
    }
}

#[test]
fn golden_cluster_sweep_quick() {
    use dysta::cluster::AcceleratorKind;

    let mut cells = Vec::new();

    // The bench sweep's homogeneous shape at smoke scale: every dispatch
    // policy on identical request streams.
    let cnn = WorkloadBuilder::new(Scenario::MultiCnn)
        .arrival_rate(12.0)
        .num_requests(100)
        .samples_per_variant(8)
        .seed(13)
        .build();
    let eyeriss_pool = ClusterConfig::homogeneous(4, AcceleratorKind::EyerissV2, Policy::Dysta);
    for dispatch in DispatchPolicy::ALL {
        cells.push(cell(
            "eyeriss-x4",
            &eyeriss_pool,
            dispatch,
            "immediate",
            &cnn,
        ));
    }

    // The serving front-end on the acceptance scenario: CNN-only traffic
    // on a heterogeneous pool under affinity dispatch — steal-disabled
    // baseline, steal-enabled, and the full serving stack.
    let het_base = ClusterConfig::heterogeneous(2, 2, Policy::Dysta);
    let het_steal = het_base.clone().with_frontend(FrontendConfig {
        steal: Some(StealConfig::default()),
        ..FrontendConfig::default()
    });
    let het_serving = het_base.clone().with_frontend(FrontendConfig {
        admit_batch: 4,
        admit_interval_ns: 20_000_000,
        steal: Some(StealConfig::default()),
        migration: Some(MigrationConfig::default()),
    });
    let affinity = DispatchPolicy::SparsityAffinity;
    cells.push(cell("het-2+2", &het_base, affinity, "immediate", &cnn));
    cells.push(cell("het-2+2", &het_steal, affinity, "steal", &cnn));
    cells.push(cell(
        "het-2+2",
        &het_serving,
        affinity,
        "batch+steal+migrate",
        &cnn,
    ));

    // The acceptance criterion rides on the same cells: with affinity
    // dispatch on a heterogeneous pool, stealing strictly reduces load
    // imbalance and does not regress ANTT vs the steal-disabled baseline.
    let baseline = &cells[cells.len() - 3];
    let stealing = &cells[cells.len() - 2];
    assert!(stealing.steals > 0);
    assert!(
        stealing.load_imbalance < baseline.load_imbalance,
        "steal imbalance {} vs baseline {}",
        stealing.load_imbalance,
        baseline.load_imbalance
    );
    assert!(
        stealing.antt <= baseline.antt,
        "steal ANTT {} vs baseline {}",
        stealing.antt,
        baseline.antt
    );

    let json = serde_json::to_string(&cells).expect("cells serialize");
    check_golden("cluster_sweep.json", &json);
}
