//! Golden-report regression suite: the quick-mode `table05_end2end` and
//! `cluster_sweep` experiment configurations, run in-process and pinned
//! byte-for-byte against recorded JSON fixtures under `tests/golden/`.
//!
//! Every run of the simulator is a pure function of its seed, so *exact*
//! equality is meaningful: any scheduling, dispatch, or front-end change
//! that shifts a single completion time shows up as a fixture diff. To
//! accept an intentional behavior change, regenerate the fixtures with
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_reports
//! ```
//!
//! and review the diff like any other code change.

use serde::{Deserialize, Serialize};

use dysta::cluster::{
    simulate_cluster, simulate_cluster_with, ClusterBuilder, ClusterConfig, ClusterPolicy,
    DispatchPolicy, FrontendConfig, InfeasibleEverywhere, MigrationConfig, SlackLoadShedding,
    StealConfig,
};
use dysta::core::{DystaConfig, Policy};
use dysta::workload::{Scenario, WorkloadBuilder};
use dysta_bench::{compare_policies, Scale};

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares (or, under `UPDATE_GOLDEN=1`, records) one serialized report
/// against its fixture.
fn check_golden(name: &str, current: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir golden");
        std::fs::write(&path, format!("{current}\n")).expect("write fixture");
        return;
    }
    let recorded = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); record it with \
             `UPDATE_GOLDEN=1 cargo test --test golden_reports`",
            path.display()
        )
    });
    assert_eq!(
        current,
        recorded.trim_end(),
        "\n`{name}` drifted from its golden fixture. If the change is \
         intentional, regenerate with `UPDATE_GOLDEN=1 cargo test --test \
         golden_reports` and commit the diff."
    );
}

// --- table05_end2end (quick mode) ----------------------------------------

#[derive(Debug, Serialize, Deserialize, PartialEq)]
struct PolicyRow {
    scenario: String,
    policy: String,
    antt: f64,
    violation_rate: f64,
    throughput_inf_s: f64,
}

#[test]
fn golden_table05_end2end_quick() {
    let scale = Scale::quick();
    let mut rows = Vec::new();
    for (name, scenario, rate) in [
        ("multi_attnn", Scenario::MultiAttNn, 30.0),
        ("multi_cnn", Scenario::MultiCnn, 3.0),
    ] {
        for row in compare_policies(
            scenario,
            rate,
            10.0,
            scale,
            &Policy::TABLE5,
            DystaConfig::default(),
        ) {
            rows.push(PolicyRow {
                scenario: name.to_string(),
                policy: row.policy.name().to_string(),
                antt: row.metrics.antt,
                violation_rate: row.metrics.violation_rate,
                throughput_inf_s: row.metrics.throughput_inf_s,
            });
        }
    }
    let json = serde_json::to_string(&rows).expect("rows serialize");
    check_golden("table05_end2end.json", &json);
}

// --- fig12_tradeoff (quick mode) ------------------------------------------

/// One point of the fig12 ANTT / SLO-violation trade-off plane.
#[derive(Debug, Serialize, Deserialize, PartialEq)]
struct TradeoffRow {
    scenario: String,
    rate: f64,
    policy: String,
    antt: f64,
    violation_rate: f64,
}

/// The `fig12_tradeoff` binary's experiment grid (both scenarios at
/// both arrival rates, full Table 5 policy set, SLO ×10) pinned at
/// quick scale. Regenerate with
/// `UPDATE_GOLDEN=1 cargo test --test golden_reports`.
#[test]
fn golden_fig12_tradeoff_quick() {
    let scale = Scale::quick();
    let mut rows = Vec::new();
    for (name, scenario, rates) in [
        ("multi_attnn", Scenario::MultiAttNn, [30.0, 40.0]),
        ("multi_cnn", Scenario::MultiCnn, [3.0, 4.0]),
    ] {
        for rate in rates {
            for row in compare_policies(
                scenario,
                rate,
                10.0,
                scale,
                &Policy::TABLE5,
                DystaConfig::default(),
            ) {
                rows.push(TradeoffRow {
                    scenario: name.to_string(),
                    rate,
                    policy: row.policy.name().to_string(),
                    antt: row.metrics.antt,
                    violation_rate: row.metrics.violation_rate,
                });
            }
        }
    }

    // Acceptance: the binary's headline — Dysta sits on the Pareto
    // frontier of every plane (no policy beats it on both axes).
    for (scenario, rate) in [
        ("multi_attnn", 30.0),
        ("multi_attnn", 40.0),
        ("multi_cnn", 3.0),
        ("multi_cnn", 4.0),
    ] {
        let plane: Vec<&TradeoffRow> = rows
            .iter()
            .filter(|r| r.scenario == scenario && r.rate == rate)
            .collect();
        let dysta = plane
            .iter()
            .find(|r| r.policy == Policy::Dysta.name())
            .expect("dysta in set");
        for row in &plane {
            assert!(
                row.antt >= dysta.antt - 1e-9 || row.violation_rate >= dysta.violation_rate - 1e-9,
                "{scenario}@{rate}: {} dominates Dysta on both axes",
                row.policy
            );
        }
    }

    let json = serde_json::to_string(&rows).expect("rows serialize");
    check_golden("fig12_tradeoff.json", &json);
}

// --- fig13_breakdown (quick mode) -----------------------------------------

/// One variant of the fig13 optimization breakdown.
#[derive(Debug, Serialize, Deserialize, PartialEq)]
struct BreakdownRow {
    scenario: String,
    policy: String,
    antt: f64,
    violation_rate: f64,
}

/// The `fig13_breakdown` binary's experiment (PREMA vs static-only
/// Dysta vs full Dysta at the paper's operating points, SLO ×10)
/// pinned at quick scale. Regenerate with
/// `UPDATE_GOLDEN=1 cargo test --test golden_reports`.
#[test]
fn golden_fig13_breakdown_quick() {
    let scale = Scale::quick();
    let set = [Policy::Prema, Policy::DystaStatic, Policy::Dysta];
    let mut rows = Vec::new();
    for (name, scenario, rate) in [
        ("multi_attnn", Scenario::MultiAttNn, 30.0),
        ("multi_cnn", Scenario::MultiCnn, 3.0),
    ] {
        let plane = compare_policies(scenario, rate, 10.0, scale, &set, DystaConfig::default());
        // Acceptance: the binary's headline — full Dysta improves ANTT
        // over PREMA (the breakdown's total gain is positive).
        assert!(
            plane[2].metrics.antt <= plane[0].metrics.antt,
            "{name}: full Dysta ANTT {} worse than PREMA {}",
            plane[2].metrics.antt,
            plane[0].metrics.antt
        );
        for row in plane {
            rows.push(BreakdownRow {
                scenario: name.to_string(),
                policy: row.policy.name().to_string(),
                antt: row.metrics.antt,
                violation_rate: row.metrics.violation_rate,
            });
        }
    }
    let json = serde_json::to_string(&rows).expect("rows serialize");
    check_golden("fig13_breakdown.json", &json);
}

// --- cluster_sweep + serving front-end (quick mode) -----------------------

#[derive(Debug, Serialize, Deserialize, PartialEq)]
struct ClusterCell {
    pool: String,
    nodes: usize,
    dispatch: String,
    frontend: String,
    antt: f64,
    violation_rate: f64,
    throughput_inf_s: f64,
    load_imbalance: f64,
    p50_ns: u64,
    p90_ns: u64,
    p99_ns: u64,
    steals: u64,
    migrations: u64,
    mean_admission_wait_ns: f64,
}

fn cell(
    pool_name: &str,
    config: &ClusterConfig,
    dispatch: DispatchPolicy,
    frontend_name: &str,
    workload: &dysta::workload::Workload,
) -> ClusterCell {
    let report = simulate_cluster(workload, dispatch.build().as_mut(), config);
    let p = report.latency_percentiles();
    ClusterCell {
        pool: pool_name.to_string(),
        nodes: config.len(),
        dispatch: dispatch.name().to_string(),
        frontend: frontend_name.to_string(),
        antt: report.antt(),
        violation_rate: report.violation_rate(),
        throughput_inf_s: report.throughput_inf_s(),
        load_imbalance: report.load_imbalance(),
        p50_ns: p.p50_ns,
        p90_ns: p.p90_ns,
        p99_ns: p.p99_ns,
        steals: report.serving().steals,
        migrations: report.serving().migrations,
        mean_admission_wait_ns: report.serving().mean_admission_wait_ns(),
    }
}

#[test]
fn golden_cluster_sweep_quick() {
    use dysta::cluster::AcceleratorKind;

    let mut cells = Vec::new();

    // The bench sweep's homogeneous shape at smoke scale: the original
    // four dispatch policies on identical request streams (EDF is pinned
    // separately in the fig14 fixture, keeping this file byte-identical
    // across the ClusterPolicy redesign).
    let cnn = WorkloadBuilder::new(Scenario::MultiCnn)
        .arrival_rate(12.0)
        .num_requests(100)
        .samples_per_variant(8)
        .seed(13)
        .build();
    let eyeriss_pool = ClusterConfig::homogeneous(4, AcceleratorKind::EyerissV2, Policy::Dysta);
    for dispatch in DispatchPolicy::CLASSIC {
        cells.push(cell(
            "eyeriss-x4",
            &eyeriss_pool,
            dispatch,
            "immediate",
            &cnn,
        ));
    }

    // The serving front-end on the acceptance scenario: CNN-only traffic
    // on a heterogeneous pool under affinity dispatch — steal-disabled
    // baseline, steal-enabled, and the full serving stack.
    let het_base = ClusterConfig::heterogeneous(2, 2, Policy::Dysta);
    let het_steal = ClusterBuilder::heterogeneous(2, 2, Policy::Dysta)
        .frontend(FrontendConfig {
            steal: Some(StealConfig::default()),
            ..FrontendConfig::default()
        })
        .build();
    let het_serving = ClusterBuilder::heterogeneous(2, 2, Policy::Dysta)
        .frontend(FrontendConfig {
            admit_batch: 4,
            admit_interval_ns: 20_000_000,
            steal: Some(StealConfig::default()),
            migration: Some(MigrationConfig::default()),
            ..FrontendConfig::default()
        })
        .build();
    let affinity = DispatchPolicy::SparsityAffinity;
    cells.push(cell("het-2+2", &het_base, affinity, "immediate", &cnn));
    cells.push(cell("het-2+2", &het_steal, affinity, "steal", &cnn));
    cells.push(cell(
        "het-2+2",
        &het_serving,
        affinity,
        "batch+steal+migrate",
        &cnn,
    ));

    // The acceptance criterion rides on the same cells: with affinity
    // dispatch on a heterogeneous pool, stealing strictly reduces load
    // imbalance and does not regress ANTT vs the steal-disabled baseline.
    let baseline = &cells[cells.len() - 3];
    let stealing = &cells[cells.len() - 2];
    assert!(stealing.steals > 0);
    assert!(
        stealing.load_imbalance < baseline.load_imbalance,
        "steal imbalance {} vs baseline {}",
        stealing.load_imbalance,
        baseline.load_imbalance
    );
    assert!(
        stealing.antt <= baseline.antt,
        "steal ANTT {} vs baseline {}",
        stealing.antt,
        baseline.antt
    );

    let json = serde_json::to_string(&cells).expect("cells serialize");
    check_golden("cluster_sweep.json", &json);
}

// --- trace_export ---------------------------------------------------------

/// Pins the Perfetto trace export byte-for-byte on a small serving
/// scenario that exercises the full event vocabulary: batched
/// admission, steals, migrations, preemptive execution, completions.
/// Any change to the event stream *or* the exporter shows up as a
/// fixture diff; regenerate intentionally changed fixtures with
/// `UPDATE_GOLDEN=1 cargo test --test golden_reports`.
#[test]
fn golden_trace_export() {
    use dysta::cluster::simulate_cluster_traced;
    use dysta::obs::RingTracer;

    let w = WorkloadBuilder::new(Scenario::MultiCnn)
        .arrival_rate(9.0)
        .num_requests(12)
        .samples_per_variant(4)
        .seed(23)
        .build();
    let pool = ClusterBuilder::heterogeneous(1, 1, Policy::Dysta)
        .frontend(FrontendConfig {
            admit_batch: 3,
            admit_interval_ns: 25_000_000,
            steal: Some(StealConfig::default()),
            migration: Some(MigrationConfig::default()),
            ..FrontendConfig::default()
        })
        .build();
    let mut policy = ClusterPolicy::from_dispatch(DispatchPolicy::SparsityAffinity);
    let tracer = RingTracer::new(1 << 14);
    let report = simulate_cluster_traced(&w, &mut policy, &pool, &tracer);
    assert_eq!(report.completed_total(), 12);
    assert_eq!(tracer.dropped(), 0, "fixture scenario must fit the ring");
    tracer.validate().expect("well-formed event stream");

    let json = tracer.perfetto_json();
    // The export must survive a JSON round-trip (what ui.perfetto.dev
    // and the CI smoke check will do to it).
    serde_json::from_str::<serde::Value>(&json).expect("export parses");
    check_golden("trace_export.json", &json);
}

// --- fig_admission (quick mode) -------------------------------------------

#[derive(Debug, Serialize, Deserialize, PartialEq)]
struct AdmissionCell {
    dispatch: String,
    admission: String,
    antt: f64,
    violation_rate: f64,
    /// Completions meeting the *original* SLO, summed over the seeds.
    goodput: usize,
    goodput_rate: f64,
    completed: usize,
    rejected: usize,
    degraded: usize,
}

/// Pins the admission-control configuration and its acceptance
/// criterion: on the fig14 2+2 capacity-heterogeneous pool at tight
/// SLOs (FCFS node scheduling, where doomed head-of-queue work really
/// blocks feasible work), `InfeasibleEverywhere` strictly reduces the
/// violation rate among admitted requests with goodput no worse than
/// admit-all, and `SlackLoadShedding` cuts violations further by
/// re-classing thin-headroom admissions. Regenerate intentionally
/// changed fixtures with `UPDATE_GOLDEN=1 cargo test --test
/// golden_reports`.
#[test]
fn golden_fig_admission_quick() {
    use dysta::cluster::balanced_mixed_serving_mix;

    let scale = Scale::quick();
    let admissions: [&str; 3] = ["admit-all", "infeasible-everywhere", "slack-load-shed"];
    let mut cells = Vec::new();
    for dispatch in [
        DispatchPolicy::SparsityAffinity,
        DispatchPolicy::EarliestDeadlineFirst,
    ] {
        for admission in admissions {
            let mut antt = 0.0;
            let mut viol = 0.0;
            let mut goodput = 0usize;
            let mut completed = 0usize;
            let mut rejected = 0usize;
            let mut degraded = 0usize;
            let mut goodput_rate = 0.0;
            for seed in 0..scale.seeds {
                let w = dysta::workload::WorkloadBuilder::from_mix(balanced_mixed_serving_mix())
                    .arrival_rate(45.0)
                    .slo_multiplier(2.0)
                    .num_requests(scale.requests)
                    .samples_per_variant(scale.samples_per_variant)
                    .seed(seed * 7919 + 13)
                    .build();
                let pool = ClusterBuilder::heterogeneous(2, 2, Policy::Fcfs)
                    .node_capacity(1, 0.5)
                    .node_capacity(3, 0.5)
                    .build();
                let mut policy = ClusterPolicy::from_dispatch(dispatch);
                policy = match admission {
                    "infeasible-everywhere" => {
                        policy.with_admission(Box::new(InfeasibleEverywhere::new()))
                    }
                    "slack-load-shed" => policy.with_admission(Box::new(SlackLoadShedding::new())),
                    _ => policy,
                };
                let report = simulate_cluster_with(&w, &mut policy, &pool);
                antt += report.antt();
                viol += report.violation_rate();
                goodput += report.goodput();
                goodput_rate += report.goodput_rate();
                completed += report.completed_total();
                rejected += report.rejected_total();
                degraded += report.degraded_total();
            }
            let n = scale.seeds as f64;
            cells.push(AdmissionCell {
                dispatch: dispatch.name().to_string(),
                admission: admission.to_string(),
                antt: antt / n,
                violation_rate: viol / n,
                goodput,
                goodput_rate: goodput_rate / n,
                completed,
                rejected,
                degraded,
            });
        }
    }

    // Acceptance: for both dispatchers, rejecting doomed work strictly
    // reduces the violation rate among admitted requests with goodput
    // no worse than admit-all; load shedding cuts violations at least
    // as far again via degraded re-classing. AdmitAll must be a true
    // no-op control (nothing rejected, nothing degraded, everything
    // completed).
    let cell = |dispatch: &str, admission: &str| {
        cells
            .iter()
            .find(|c| c.dispatch == dispatch && c.admission == admission)
            .expect("cell exists")
    };
    for dispatch in ["affinity", "edf"] {
        let all = cell(dispatch, "admit-all");
        let reject = cell(dispatch, "infeasible-everywhere");
        let shed = cell(dispatch, "slack-load-shed");
        assert_eq!(all.rejected, 0);
        assert_eq!(all.degraded, 0);
        assert_eq!(
            all.completed,
            Scale::quick().requests * Scale::quick().seeds as usize
        );
        assert!(
            reject.violation_rate < all.violation_rate,
            "{dispatch}: reject viol {} vs admit-all {}",
            reject.violation_rate,
            all.violation_rate
        );
        assert!(
            reject.goodput >= all.goodput,
            "{dispatch}: reject goodput {} vs admit-all {}",
            reject.goodput,
            all.goodput
        );
        assert!(reject.rejected > 0, "{dispatch}: rejection must engage");
        assert!(
            shed.violation_rate <= reject.violation_rate,
            "{dispatch}: shed viol {} vs reject {}",
            shed.violation_rate,
            reject.violation_rate
        );
        assert!(shed.degraded > 0, "{dispatch}: degrading must engage");
        assert!(
            shed.goodput >= all.goodput,
            "{dispatch}: shed goodput {} vs admit-all {}",
            shed.goodput,
            all.goodput
        );
    }

    let json = serde_json::to_string(&cells).expect("admission cells serialize");
    check_golden("fig_admission.json", &json);
}

// --- fig_faults (quick mode) ----------------------------------------------

#[derive(Debug, Serialize, Deserialize, PartialEq)]
struct FaultCell {
    dispatch: String,
    recovery: String,
    antt: f64,
    violation_rate: f64,
    /// Completions meeting the *original* SLO, summed over the seeds.
    goodput: usize,
    goodput_rate: f64,
    completed: usize,
    failed: usize,
    reneged: usize,
    salvaged: usize,
    retries: usize,
    lost_busy_ms: f64,
}

/// Pins the fault-injection configuration and its acceptance criterion:
/// on the fig_admission pool (2+2 capacity-heterogeneous, FCFS node
/// scheduling) under the serving front-end, with one mid-stream
/// transient crash and one brown-out window, salvage-and-redispatch
/// plus reneging strictly improves goodput and loses strictly fewer
/// requests than a recovery-disabled pool facing the same schedule.
/// Regenerate intentionally changed fixtures with `UPDATE_GOLDEN=1
/// cargo test --test golden_reports`.
#[test]
fn golden_fig_faults_quick() {
    use dysta::cluster::{balanced_mixed_serving_mix, FaultConfig, FaultSchedule, RecoveryConfig};

    let scale = Scale::quick();
    // The arrival stream spans ~2.2 s at rate 45 and overdrives the
    // pool, so queues deepen over the run: crashing the full-speed
    // Eyeriss node at 1.5 s strands a real backlog (healing after
    // the stream ends), and the brown-out halves the full-speed Sanger
    // node over the back half of the stream.
    let schedule = FaultSchedule::new()
        .transient_crash(0, 1_500_000_000, 2_500_000_000)
        .brownout(2, 800_000_000, 2_000_000_000, 0.5);
    let recoveries: [(&str, RecoveryConfig); 2] = [
        (
            "salvage+renege",
            RecoveryConfig {
                salvage: true,
                max_retries: 2,
                reneging: true,
            },
        ),
        (
            "none",
            RecoveryConfig {
                salvage: false,
                max_retries: 0,
                reneging: false,
            },
        ),
    ];
    let mut cells = Vec::new();
    for dispatch in [
        DispatchPolicy::SparsityAffinity,
        DispatchPolicy::EarliestDeadlineFirst,
    ] {
        for (recovery_name, recovery) in recoveries {
            let mut antt = 0.0;
            let mut viol = 0.0;
            let mut goodput = 0usize;
            let mut goodput_rate = 0.0;
            let mut completed = 0usize;
            let mut failed = 0usize;
            let mut reneged = 0usize;
            let mut salvaged = 0usize;
            let mut retries = 0usize;
            let mut lost_busy_ns = 0u64;
            for seed in 0..scale.seeds {
                let w = dysta::workload::WorkloadBuilder::from_mix(balanced_mixed_serving_mix())
                    .arrival_rate(45.0)
                    .slo_multiplier(2.0)
                    .num_requests(scale.requests)
                    .samples_per_variant(scale.samples_per_variant)
                    .seed(seed * 7919 + 13)
                    .build();
                let pool = ClusterBuilder::heterogeneous(2, 2, Policy::Fcfs)
                    .node_capacity(1, 0.5)
                    .node_capacity(3, 0.5)
                    .frontend(FrontendConfig::serving())
                    .faults(FaultConfig {
                        schedule: schedule.clone(),
                        recovery,
                    })
                    .build();
                let mut policy = ClusterPolicy::from_dispatch(dispatch);
                let report = simulate_cluster_with(&w, &mut policy, &pool);
                assert_eq!(
                    report.admitted_total(),
                    report.completed_total() + report.failed_total() + report.reneged_total(),
                    "conservation must close under faults"
                );
                antt += report.antt();
                viol += report.violation_rate();
                goodput += report.goodput();
                goodput_rate += report.goodput_rate();
                completed += report.completed_total();
                failed += report.failed_total();
                reneged += report.reneged_total();
                salvaged += report.recovery().salvaged as usize;
                retries += report.recovery().retries as usize;
                lost_busy_ns += report.recovery().lost_busy_ns;
            }
            let n = scale.seeds as f64;
            cells.push(FaultCell {
                dispatch: dispatch.name().to_string(),
                recovery: recovery_name.to_string(),
                antt: antt / n,
                violation_rate: viol / n,
                goodput,
                goodput_rate: goodput_rate / n,
                completed,
                failed,
                reneged,
                salvaged,
                retries,
                lost_busy_ms: lost_busy_ns as f64 / 1e6,
            });
        }
    }

    // Acceptance: for both dispatchers, recovery strictly improves
    // goodput over letting the crash take its queue down, and the
    // crash must really strand work in both configurations.
    let cell = |dispatch: &str, recovery: &str| {
        cells
            .iter()
            .find(|c| c.dispatch == dispatch && c.recovery == recovery)
            .expect("cell exists")
    };
    for dispatch in ["affinity", "edf"] {
        let on = cell(dispatch, "salvage+renege");
        let off = cell(dispatch, "none");
        assert!(on.salvaged > 0, "{dispatch}: crash must strand work");
        assert!(off.failed > 0, "{dispatch}: no-recovery must lose work");
        assert!(
            on.failed < off.failed,
            "{dispatch}: recovery failed {} vs none {}",
            on.failed,
            off.failed
        );
        assert!(
            on.goodput > off.goodput,
            "{dispatch}: recovery goodput {} vs none {}",
            on.goodput,
            off.goodput
        );
        assert!(
            on.goodput_rate > off.goodput_rate,
            "{dispatch}: recovery goodput_rate {} vs none {}",
            on.goodput_rate,
            off.goodput_rate
        );
    }

    let json = serde_json::to_string(&cells).expect("fault cells serialize");
    check_golden("fig_faults.json", &json);
}

// --- fig14_slo_sweep (quick mode) -----------------------------------------

#[derive(Debug, Serialize, Deserialize, PartialEq)]
struct SloRow {
    scenario: String,
    rate: f64,
    slo_multiplier: f64,
    policy: String,
    antt: f64,
    violation_rate: f64,
}

#[derive(Debug, Serialize, Deserialize, PartialEq)]
struct EdfClusterCell {
    dispatch: String,
    slo_multiplier: f64,
    antt: f64,
    violation_rate: f64,
}

#[derive(Debug, Serialize, Deserialize, PartialEq)]
struct Fig14Golden {
    single_node: Vec<SloRow>,
    cluster_edf: Vec<EdfClusterCell>,
}

/// Pins the deadline-flavored `fig14_slo_sweep` configuration: the
/// single-accelerator SLO sweep at the ends of the multiplier range,
/// plus the cluster EDF section (the first client of the
/// `ClusterPolicy` redesign) at its two tightest multipliers. The
/// acceptance criterion for deadline-aware dispatch rides on the same
/// cells; regenerate intentionally changed fixtures with
/// `UPDATE_GOLDEN=1 cargo test --test golden_reports`.
#[test]
fn golden_fig14_slo_sweep_quick() {
    use dysta::cluster::balanced_mixed_serving_mix;

    let scale = Scale::quick();

    // The binary's policy list (fig14 includes the Oracle).
    const FIG14_POLICIES: [Policy; 7] = [
        Policy::Fcfs,
        Policy::Sjf,
        Policy::Prema,
        Policy::Planaria,
        Policy::Sdrm3,
        Policy::Oracle,
        Policy::Dysta,
    ];

    let mut single_node = Vec::new();
    for (name, scenario, rate) in [
        ("multi_attnn", Scenario::MultiAttNn, 30.0),
        ("multi_cnn", Scenario::MultiCnn, 3.0),
    ] {
        for m in [10.0, 150.0] {
            for row in compare_policies(
                scenario,
                rate,
                m,
                scale,
                &FIG14_POLICIES,
                DystaConfig::default(),
            ) {
                single_node.push(SloRow {
                    scenario: name.to_string(),
                    rate,
                    slo_multiplier: m,
                    policy: row.policy.name().to_string(),
                    antt: row.metrics.antt,
                    violation_rate: row.metrics.violation_rate,
                });
            }
        }
    }

    // The cluster section: mixed traffic on a capacity-heterogeneous
    // 2+2 pool (one node per family at 0.5 capacity), tight SLOs.
    let mut cluster_edf = Vec::new();
    for m in [3.0, 5.0] {
        for dispatch in [
            DispatchPolicy::JoinShortestQueue,
            DispatchPolicy::SparsityAffinity,
            DispatchPolicy::EarliestDeadlineFirst,
        ] {
            let mut antt = 0.0;
            let mut viol = 0.0;
            for seed in 0..scale.seeds {
                let w = dysta::workload::WorkloadBuilder::from_mix(balanced_mixed_serving_mix())
                    .arrival_rate(30.0)
                    .slo_multiplier(m)
                    .num_requests(scale.requests)
                    .samples_per_variant(scale.samples_per_variant)
                    .seed(seed * 7919 + 13)
                    .build();
                let pool = ClusterBuilder::heterogeneous(2, 2, Policy::Dysta)
                    .node_capacity(1, 0.5)
                    .node_capacity(3, 0.5)
                    .build();
                let report = simulate_cluster(&w, dispatch.build().as_mut(), &pool);
                antt += report.antt();
                viol += report.violation_rate();
            }
            let n = scale.seeds as f64;
            cluster_edf.push(EdfClusterCell {
                dispatch: dispatch.name().to_string(),
                slo_multiplier: m,
                antt: antt / n,
                violation_rate: viol / n,
            });
        }
    }

    // Acceptance: at the tight multiplier deadline-aware dispatch
    // strictly reduces the violation rate vs both jsq and affinity with
    // ANTT no more than 10% worse; at the looser one it never does
    // worse than either.
    let cell = |dispatch: &str, m: f64| {
        cluster_edf
            .iter()
            .find(|c| c.dispatch == dispatch && c.slo_multiplier == m)
            .expect("cell exists")
    };
    for m in [3.0, 5.0] {
        let jsq = cell("jsq", m);
        let affinity = cell("affinity", m);
        let edf = cell("edf", m);
        assert!(
            edf.violation_rate <= affinity.violation_rate
                && edf.violation_rate <= jsq.violation_rate,
            "x{m}: edf {} vs affinity {} / jsq {}",
            edf.violation_rate,
            affinity.violation_rate,
            jsq.violation_rate
        );
        assert!(
            edf.antt <= affinity.antt.min(jsq.antt) * 1.1,
            "x{m}: edf ANTT {} vs affinity {} / jsq {}",
            edf.antt,
            affinity.antt,
            jsq.antt
        );
    }
    assert!(
        cell("edf", 3.0).violation_rate < cell("affinity", 3.0).violation_rate,
        "tight-SLO cell must show a strict violation reduction"
    );

    let golden = Fig14Golden {
        single_node,
        cluster_edf,
    };
    let json = serde_json::to_string(&golden).expect("fig14 rows serialize");
    check_golden("fig14_slo_sweep.json", &json);
}

// --- fig15_rate_sweep (quick mode) ----------------------------------------

#[derive(Debug, Serialize, Deserialize, PartialEq)]
struct RateRow {
    scenario: String,
    rate: f64,
    policy: String,
    antt: f64,
    violation_rate: f64,
    throughput_inf_s: f64,
}

/// Pins the `fig15_rate_sweep` configuration at the ends of each
/// scenario's rate range (the cells that anchor the figure's "metrics
/// rise with the arrival rate" shape), with the binary's full policy
/// list. Regenerate intentionally changed fixtures with
/// `UPDATE_GOLDEN=1 cargo test --test golden_reports`.
#[test]
fn golden_fig15_rate_sweep_quick() {
    let scale = Scale::quick();

    // The binary's policy list (fig15 includes the Oracle).
    const FIG15_POLICIES: [Policy; 7] = [
        Policy::Fcfs,
        Policy::Sjf,
        Policy::Prema,
        Policy::Planaria,
        Policy::Sdrm3,
        Policy::Oracle,
        Policy::Dysta,
    ];

    let mut rows = Vec::new();
    for (name, scenario, rates) in [
        ("multi_attnn", Scenario::MultiAttNn, [10.0, 40.0]),
        ("multi_cnn", Scenario::MultiCnn, [2.0, 6.0]),
    ] {
        for rate in rates {
            for row in compare_policies(
                scenario,
                rate,
                10.0,
                scale,
                &FIG15_POLICIES,
                DystaConfig::default(),
            ) {
                rows.push(RateRow {
                    scenario: name.to_string(),
                    rate,
                    policy: row.policy.name().to_string(),
                    antt: row.metrics.antt,
                    violation_rate: row.metrics.violation_rate,
                    throughput_inf_s: row.metrics.throughput_inf_s,
                });
            }
        }
    }

    // Acceptance: heavier traffic never helps — for every scenario and
    // policy, ANTT and the violation rate are no better at the heavy
    // end of the rate range than at the light end.
    for (scenario, light, heavy) in [("multi_attnn", 10.0, 40.0), ("multi_cnn", 2.0, 6.0)] {
        for policy in FIG15_POLICIES {
            let at = |rate: f64| {
                rows.iter()
                    .find(|r| r.scenario == scenario && r.rate == rate && r.policy == policy.name())
                    .expect("row exists")
            };
            let (l, h) = (at(light), at(heavy));
            assert!(
                h.antt >= l.antt,
                "{scenario}/{}: ANTT fell from {} to {} under heavier traffic",
                policy.name(),
                l.antt,
                h.antt
            );
            assert!(
                h.violation_rate >= l.violation_rate,
                "{scenario}/{}: violations fell from {} to {} under heavier traffic",
                policy.name(),
                l.violation_rate,
                h.violation_rate
            );
        }
    }

    let json = serde_json::to_string(&rows).expect("fig15 rows serialize");
    check_golden("fig15_rate_sweep.json", &json);
}

// --- fig_load_curve (quick mode) ------------------------------------------

#[derive(Debug, Serialize, Deserialize, PartialEq)]
struct LoadCurveCell {
    shape: String,
    load: f64,
    admission: String,
    goodput_rate: f64,
    p99_ms: f64,
    /// Summed over the seeds (exact counts, like `fig_admission`).
    rejected: usize,
    degraded: usize,
    /// Max over the seeds: the front-end's in-flight high-water mark.
    peak_live: usize,
}

/// Pins the `fig_load_curve` configuration: open-loop flash-crowd and
/// phase-change streams at 1x..4x the steady operating point
/// (45 req/s, the `fig_admission` pool, SLO x2, EDF dispatch), served
/// with and without slack load shedding. The acceptance criterion is
/// the issue's: at >= 3x the operating point under the flash crowd,
/// shedding engages and goodput degrades gracefully — no worse than
/// admit-all's. This is also the first fixture running entirely
/// through `simulate_cluster_stream_with` (no materialized workload).
/// Regenerate intentionally changed fixtures with `UPDATE_GOLDEN=1
/// cargo test --test golden_reports`.
#[test]
fn golden_fig_load_curve_quick() {
    use dysta::cluster::{balanced_mixed_serving_mix, simulate_cluster_stream_with};
    use dysta::workload::{ArrivalProcess, PhaseSpec, Popularity, SloModel, StreamSpec};

    const BASE_RATE: f64 = 45.0;
    let scale = Scale::quick();

    let stream_spec = |shape: &str, load: f64, seed: u64| {
        let mix = balanced_mixed_serving_mix();
        let phases = match shape {
            "flash-crowd" => vec![PhaseSpec {
                start_ns: 0,
                process: ArrivalProcess::FlashCrowd {
                    base_rate: BASE_RATE,
                    peak_rate: BASE_RATE * load,
                    start_s: 0.5,
                    duration_s: 60.0,
                },
                mix,
                popularity: Popularity::Weighted,
                slo: SloModel::Fixed(2.0),
            }],
            _ => vec![
                PhaseSpec::steady(0, BASE_RATE, mix.clone(), SloModel::Fixed(2.0)),
                PhaseSpec {
                    start_ns: 500_000_000,
                    process: ArrivalProcess::Poisson {
                        rate: BASE_RATE * load,
                    },
                    mix,
                    popularity: Popularity::Zipfian { exponent: 1.0 },
                    slo: SloModel::Fixed(2.0),
                },
            ],
        };
        StreamSpec {
            phases,
            num_requests: scale.requests as u64,
            samples_per_variant: scale.samples_per_variant,
            seed,
        }
    };

    let mut cells = Vec::new();
    for shape in ["flash-crowd", "phase-change"] {
        for load in [1.0, 2.0, 3.0, 4.0] {
            for admission in ["admit-all", "slack-load-shed"] {
                let mut goodput_rate = 0.0;
                let mut p99_ns = 0u64;
                let mut rejected = 0usize;
                let mut degraded = 0usize;
                let mut peak_live = 0usize;
                for seed in 0..scale.seeds {
                    let spec = stream_spec(shape, load, seed * 7919 + 13);
                    let store = spec.build_store();
                    let pool = ClusterBuilder::heterogeneous(2, 2, Policy::Fcfs)
                        .node_capacity(1, 0.5)
                        .node_capacity(3, 0.5)
                        .build();
                    let mut policy =
                        ClusterPolicy::from_dispatch(DispatchPolicy::EarliestDeadlineFirst);
                    if admission == "slack-load-shed" {
                        policy = policy.with_admission(Box::new(SlackLoadShedding::new()));
                    }
                    let report =
                        simulate_cluster_stream_with(spec.source(&store), &mut policy, &pool);
                    goodput_rate += report.goodput_rate();
                    p99_ns += report.turnaround_percentile_ns(0.99);
                    rejected += report.rejected_total();
                    degraded += report.degraded_total();
                    peak_live = peak_live.max(report.serving().peak_live_requests);
                }
                let n = scale.seeds as f64;
                cells.push(LoadCurveCell {
                    shape: shape.to_string(),
                    load,
                    admission: admission.to_string(),
                    goodput_rate: goodput_rate / n,
                    p99_ms: p99_ns as f64 / n / 1e6,
                    rejected,
                    degraded,
                    peak_live,
                });
            }
        }
    }

    // Acceptance (the issue's criterion): under the flash crowd at
    // >= 3x the steady operating point, shedding must have engaged and
    // goodput must degrade gracefully — at or above admit-all's at the
    // same load, and declining (not collapsing) as the load doubles.
    let cell = |shape: &str, load: f64, admission: &str| {
        cells
            .iter()
            .find(|c| c.shape == shape && c.load == load && c.admission == admission)
            .expect("cell exists")
    };
    for shape in ["flash-crowd", "phase-change"] {
        let all_1x = cell(shape, 1.0, "admit-all");
        assert_eq!(all_1x.rejected, 0, "{shape}: admit-all is a no-op control");
        assert_eq!(all_1x.degraded, 0, "{shape}: admit-all is a no-op control");
        for load in [3.0, 4.0] {
            let all = cell(shape, load, "admit-all");
            let shed = cell(shape, load, "slack-load-shed");
            assert!(
                shed.rejected + shed.degraded > 0,
                "{shape} at {load}x: shedding must engage"
            );
            assert!(
                shed.goodput_rate >= all.goodput_rate,
                "{shape} at {load}x: shed goodput {} vs admit-all {}",
                shed.goodput_rate,
                all.goodput_rate
            );
        }
    }

    let json = serde_json::to_string(&cells).expect("load-curve cells serialize");
    check_golden("fig_load_curve.json", &json);
}
