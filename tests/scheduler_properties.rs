//! Property-based tests (proptest) on scheduler and engine invariants.

use proptest::prelude::*;

use dysta::core::Policy;
use dysta::models::ModelId;
use dysta::sim::{simulate, EngineConfig};
use dysta::sparsity::SparsityPattern;
use dysta::trace::{SparseModelSpec, TraceGenerator};
use dysta::workload::{Scenario, WorkloadBuilder};

fn policy_strategy() -> impl Strategy<Value = Policy> {
    prop::sample::select(Policy::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservation + sanity for arbitrary (policy, seed, rate, SLO).
    #[test]
    fn engine_invariants_hold(
        policy in policy_strategy(),
        seed in 0u64..1000,
        rate in 1.0f64..6.0,
        slo in 2.0f64..60.0,
    ) {
        let w = WorkloadBuilder::new(Scenario::MultiCnn)
            .arrival_rate(rate)
            .slo_multiplier(slo)
            .num_requests(30)
            .samples_per_variant(6)
            .seed(seed)
            .build();
        let report = simulate(&w, policy.build().as_mut(), &EngineConfig::default());

        // Every request completes exactly once.
        prop_assert_eq!(report.completed().len(), 30);
        let mut ids: Vec<u64> = report.completed().iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), 30);

        for c in report.completed() {
            // No time travel: completion after arrival + pure service.
            prop_assert!(c.completion_ns >= c.arrival_ns + c.isolated_ns);
            // NTT >= 1 by construction.
            prop_assert!(c.normalized_turnaround() >= 1.0);
        }
        prop_assert!(report.antt() >= 1.0);
        prop_assert!((0.0..=1.0).contains(&report.violation_rate()));
    }

    /// Work conservation: total busy time is schedule-independent, so the
    /// last completion differs between policies only by switch overhead.
    #[test]
    fn makespan_bounded_by_switch_overhead(seed in 0u64..500) {
        let w = WorkloadBuilder::new(Scenario::MultiAttNn)
            .num_requests(25)
            .samples_per_variant(6)
            .seed(seed)
            .build();
        let total_work: u64 = w.requests().iter().map(|r| w.isolated_ns(r)).sum();
        let config = EngineConfig { preemption_overhead_ns: 10_000, ..EngineConfig::default() };
        for policy in [Policy::Fcfs, Policy::Dysta] {
            let report = simulate(&w, policy.build().as_mut(), &config);
            let makespan_end = report
                .completed()
                .iter()
                .map(|c| c.completion_ns)
                .max()
                .unwrap();
            let switch_cost = report.preemptions() * config.preemption_overhead_ns;
            let first_arrival = w.requests()[0].arrival_ns;
            // The engine can never finish before doing all the work, nor
            // later than work + idle-gaps + switches.
            prop_assert!(makespan_end >= first_arrival + total_work / 25);
            let last_arrival = w.requests().last().unwrap().arrival_ns;
            prop_assert!(
                makespan_end <= last_arrival + total_work + switch_cost,
                "makespan {} exceeds bound", makespan_end
            );
        }
    }

    /// Monitored sparsities replayed by the engine match the trace.
    #[test]
    fn traces_are_internally_consistent(
        seed in 0u64..1000,
        count in 1u64..16,
    ) {
        let spec = SparseModelSpec::new(ModelId::Bert, SparsityPattern::Dense, 0.0);
        let traces = TraceGenerator::default().generate(&spec, count, seed);
        prop_assert_eq!(traces.num_samples() as u64, count);
        for i in 0..count {
            let t = traces.sample(i);
            // Remaining telescopes to the isolated latency.
            prop_assert_eq!(t.remaining_ns(0), t.isolated_latency_ns());
            let mut acc = 0u64;
            for (j, l) in t.layers().iter().enumerate() {
                prop_assert_eq!(
                    t.isolated_latency_ns() - acc,
                    t.remaining_ns(j)
                );
                acc += l.latency_ns;
                prop_assert!(l.latency_ns > 0);
                prop_assert!((0.0..=1.0).contains(&l.sparsity));
            }
        }
    }
}
