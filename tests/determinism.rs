//! Reproducibility guarantees: everything is a pure function of its seed.

use dysta::core::Policy;
use dysta::models::ModelId;
use dysta::obs::RingTracer;
use dysta::sim::{simulate, simulate_traced, EngineConfig};
use dysta::sparsity::SparsityPattern;
use dysta::trace::{SparseModelSpec, TraceGenerator};
use dysta::workload::{Scenario, WorkloadBuilder};

#[test]
fn workloads_are_reproducible() {
    let build = || {
        WorkloadBuilder::new(Scenario::MultiAttNn)
            .num_requests(50)
            .samples_per_variant(8)
            .seed(99)
            .build()
    };
    let (a, b) = (build(), build());
    assert_eq!(a.requests(), b.requests());
    assert_eq!(a.store(), b.store());
}

#[test]
fn simulations_are_reproducible_for_every_policy() {
    let w = WorkloadBuilder::new(Scenario::MultiCnn)
        .num_requests(50)
        .samples_per_variant(8)
        .seed(17)
        .build();
    for policy in Policy::ALL {
        let a = simulate(&w, policy.build().as_mut(), &EngineConfig::default());
        let b = simulate(&w, policy.build().as_mut(), &EngineConfig::default());
        assert_eq!(a.completed(), b.completed(), "{policy}");
        assert_eq!(a.preemptions(), b.preemptions(), "{policy}");
    }
}

#[test]
fn traced_runs_match_untraced_and_export_byte_identically() {
    let w = WorkloadBuilder::new(Scenario::MultiCnn)
        .num_requests(50)
        .samples_per_variant(8)
        .seed(17)
        .build();
    for policy in Policy::ALL {
        // Tracing observes without perturbing: the traced report equals
        // the untraced one for every shipped policy.
        let plain = simulate(&w, policy.build().as_mut(), &EngineConfig::default());
        let run = || {
            let tracer = RingTracer::new(1 << 16);
            let report = simulate_traced(
                &w,
                policy.build().as_mut(),
                &EngineConfig::default(),
                &tracer,
            );
            tracer.validate().expect("well-formed event stream");
            (report, tracer.perfetto_json())
        };
        let (r1, json1) = run();
        let (r2, json2) = run();
        assert_eq!(plain.completed(), r1.completed(), "{policy}");
        assert_eq!(r1.completed(), r2.completed(), "{policy}");
        // The export itself is a pure function of the run.
        assert_eq!(json1, json2, "{policy}: trace export not deterministic");
    }
}

#[test]
fn traces_depend_on_seed_but_not_generation_order() {
    let spec = SparseModelSpec::new(ModelId::Gpt2, SparsityPattern::Dense, 0.0);
    let g = TraceGenerator::default();
    let full = g.generate(&spec, 8, 3);
    // Regenerating fewer samples yields a prefix (per-index determinism).
    let prefix = g.generate(&spec, 4, 3);
    for i in 0..4 {
        assert_eq!(full.sample(i), prefix.sample(i));
    }
}

#[test]
fn seeds_actually_matter() {
    let w1 = WorkloadBuilder::new(Scenario::MultiCnn)
        .num_requests(50)
        .samples_per_variant(8)
        .seed(1)
        .build();
    let w2 = WorkloadBuilder::new(Scenario::MultiCnn)
        .num_requests(50)
        .samples_per_variant(8)
        .seed(2)
        .build();
    assert_ne!(w1.requests(), w2.requests());
}
