//! Reproducibility guarantees: everything is a pure function of its seed.

use dysta::core::Policy;
use dysta::models::ModelId;
use dysta::sim::{simulate, EngineConfig};
use dysta::sparsity::SparsityPattern;
use dysta::trace::{SparseModelSpec, TraceGenerator};
use dysta::workload::{Scenario, WorkloadBuilder};

#[test]
fn workloads_are_reproducible() {
    let build = || {
        WorkloadBuilder::new(Scenario::MultiAttNn)
            .num_requests(50)
            .samples_per_variant(8)
            .seed(99)
            .build()
    };
    let (a, b) = (build(), build());
    assert_eq!(a.requests(), b.requests());
    assert_eq!(a.store(), b.store());
}

#[test]
fn simulations_are_reproducible_for_every_policy() {
    let w = WorkloadBuilder::new(Scenario::MultiCnn)
        .num_requests(50)
        .samples_per_variant(8)
        .seed(17)
        .build();
    for policy in Policy::ALL {
        let a = simulate(&w, policy.build().as_mut(), &EngineConfig::default());
        let b = simulate(&w, policy.build().as_mut(), &EngineConfig::default());
        assert_eq!(a.completed(), b.completed(), "{policy}");
        assert_eq!(a.preemptions(), b.preemptions(), "{policy}");
    }
}

#[test]
fn traces_depend_on_seed_but_not_generation_order() {
    let spec = SparseModelSpec::new(ModelId::Gpt2, SparsityPattern::Dense, 0.0);
    let g = TraceGenerator::default();
    let full = g.generate(&spec, 8, 3);
    // Regenerating fewer samples yields a prefix (per-index determinism).
    let prefix = g.generate(&spec, 4, 3);
    for i in 0..4 {
        assert_eq!(full.sample(i), prefix.sample(i));
    }
}

#[test]
fn seeds_actually_matter() {
    let w1 = WorkloadBuilder::new(Scenario::MultiCnn)
        .num_requests(50)
        .samples_per_variant(8)
        .seed(1)
        .build();
    let w2 = WorkloadBuilder::new(Scenario::MultiCnn)
        .num_requests(50)
        .samples_per_variant(8)
        .seed(2)
        .build();
    assert_ne!(w1.requests(), w2.requests());
}
