//! Streaming-generator equivalence (proptest): the open-loop
//! [`ArrivalSource`] must reproduce the materializing
//! [`WorkloadBuilder`] bit-exactly for steady Poisson traffic — same
//! requests, same trace store, across arbitrary seeds, scenarios,
//! rates, SLO models, and trace resolutions. This is the gate that
//! lets the cluster front-end consume streams without a golden-fixture
//! re-pin: any draw-order drift between the two generators fails here
//! with a minimized counterexample.
//!
//! Phase-change sequences have no builder counterpart, so they are
//! pinned against themselves: two runs of the same spec must agree
//! request-for-request, arrivals must be monotone and land inside
//! their phase's half-open window, and ids must stay dense.

use proptest::prelude::*;

use dysta::workload::{
    ArrivalProcess, PhaseSpec, Popularity, Scenario, SloModel, StreamSpec, WorkloadBuilder,
};

const SCENARIOS: [Scenario; 5] = [
    Scenario::MultiAttNn,
    Scenario::MultiCnn,
    Scenario::MobileAssistant,
    Scenario::ArVrWearable,
    Scenario::DataCenter,
];

proptest! {
    #![proptest_config(ProptestConfig {
        cases: std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32),
    })]

    /// Steady Poisson: streaming == materialized builder, bit for bit.
    #[test]
    fn steady_poisson_stream_matches_builder(
        seed in 0u64..1_000_000,
        scenario_idx in 0usize..SCENARIOS.len(),
        rate_centi in 1u64..5_000,       // 0.01 .. 50 requests/s
        num_requests in 1u64..200,
        samples in 1u64..8,
        // < 100 selects the [2, 12] SLO range; otherwise M_slo = value/100.
        slo_fixed_centi in 0u64..2_000,
    ) {
        let scenario = SCENARIOS[scenario_idx];
        let rate = rate_centi as f64 / 100.0;

        let mut builder = WorkloadBuilder::new(scenario)
            .arrival_rate(rate)
            .num_requests(num_requests as usize)
            .samples_per_variant(samples)
            .seed(seed);
        let mut spec = StreamSpec::steady_poisson(scenario, rate, 0.0)
            .num_requests(num_requests)
            .samples_per_variant(samples)
            .seed(seed);
        if slo_fixed_centi < 100 {
            builder = builder.slo_multiplier_range(2.0, 12.0);
            spec.phases[0].slo = SloModel::Range { lo: 2.0, hi: 12.0 };
        } else {
            let m = slo_fixed_centi as f64 / 100.0;
            builder = builder.slo_multiplier(m);
            spec.phases[0].slo = SloModel::Fixed(m);
        }

        let expected = builder.build();
        let actual = spec.materialize();
        prop_assert_eq!(actual.requests(), expected.requests());
        prop_assert_eq!(actual.store(), expected.store());
    }

    /// Phase-change sequences: deterministic across runs, monotone
    /// arrivals, dense ids, and every arrival inside its phase window.
    #[test]
    fn phase_change_stream_is_deterministic_and_monotone(
        seed in 0u64..1_000_000,
        rate_a_centi in 50u64..2_000,
        rate_b_centi in 50u64..2_000,
        boundary_s in 1u64..30,
        num_requests in 1u64..300,
    ) {
        let boundary_ns = boundary_s * 1_000_000_000;
        let spec = StreamSpec {
            phases: vec![
                PhaseSpec::steady(
                    0,
                    rate_a_centi as f64 / 10.0,
                    Scenario::MultiAttNn.mix(),
                    SloModel::Fixed(10.0),
                ),
                PhaseSpec {
                    start_ns: boundary_ns,
                    process: ArrivalProcess::Poisson {
                        rate: rate_b_centi as f64 / 10.0,
                    },
                    mix: Scenario::MultiCnn.mix(),
                    popularity: Popularity::Zipfian { exponent: 1.0 },
                    slo: SloModel::Range { lo: 5.0, hi: 15.0 },
                },
            ],
            num_requests,
            samples_per_variant: 4,
            seed,
        };

        let store = spec.build_store();
        let first: Vec<_> = spec.source(&store).collect();
        let second: Vec<_> = spec.source(&store).collect();
        prop_assert_eq!(&first, &second);
        prop_assert_eq!(first.len() as u64, num_requests);

        let mut prev_arrival = 0u64;
        for (i, request) in first.iter().enumerate() {
            prop_assert_eq!(request.id, i as u64);
            prop_assert!(request.arrival_ns >= prev_arrival);
            prev_arrival = request.arrival_ns;
        }
        // Requests before the boundary draw from phase 0's mix, at and
        // after it from phase 1's (the window is half-open).
        let attnn = Scenario::MultiAttNn.mix();
        let cnn = Scenario::MultiCnn.mix();
        for request in &first {
            let mix = if request.arrival_ns < boundary_ns { &attnn } else { &cnn };
            prop_assert!(mix.iter().any(|(s, _)| *s == request.spec));
        }
    }
}
