//! Pick-sequence equivalence (proptest): for every policy, a scheduler
//! served from its indexed heap structures (hooked queue) must return
//! exactly the pick sequence of the reference fold implementation,
//! under arbitrary queue churn — arrivals, layer completions,
//! preemption-style interleaving, unstarted removals (the steal /
//! migrate / renege seam), and task completions.
//!
//! Two instances of the same policy are driven through an identical
//! hook stream over an identical arena; one picks from a
//! [`TaskQueue::hooked`] view (the sub-linear path), the other from a
//! plain indexed view (the fold path). Any divergence — ordering,
//! tie-breaks, feasibility lapses — fails the run with the offending
//! operation sequence minimized by proptest.

use proptest::prelude::*;

use dysta::core::{ModelInfoLut, Policy, QueuePositions, Scheduler, TaskQueue, TaskState};
use dysta::models::ModelId;
use dysta::sparsity::SparsityPattern;
use dysta::trace::{SparseModelSpec, TraceGenerator, TraceStore};

/// One queue-churn operation, decoded from a generated `(op, a, b)`
/// triple. `a` spans nanosecond-scale durations, `b` selects/spreads.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Arrive a task with `slo_ns = a * (b + 1)` and 1–3 layers.
    Arrive,
    /// Pick (indexed vs fold must agree) and execute one layer for `a` ns.
    Pick,
    /// Withdraw the `b`-th unstarted task, as steal/migrate/renege do.
    Remove,
    /// Let `a` ns of idle time pass.
    Advance,
}

struct Harness {
    tasks: Vec<TaskState>,
    active: Vec<usize>,
    positions: QueuePositions,
    /// Picks from the hooked (indexed) queue view.
    indexed: Box<dyn Scheduler>,
    /// Picks from the plain view — the reference fold path.
    fold: Box<dyn Scheduler>,
    lut: ModelInfoLut,
    spec: SparseModelSpec,
    now_ns: u64,
    next_id: u64,
}

impl Harness {
    fn new(policy: Policy, lut: ModelInfoLut, spec: SparseModelSpec) -> Self {
        Harness {
            tasks: Vec::new(),
            active: Vec::new(),
            positions: QueuePositions::default(),
            indexed: policy.build(),
            fold: policy.build(),
            lut,
            spec,
            now_ns: 0,
            next_id: 0,
        }
    }

    fn arrive(&mut self, slo_ns: u64, true_remaining_ns: u64, num_layers: usize) {
        let variant = self.lut.variant_id(&self.spec).expect("spec profiled");
        let mut task = TaskState::arrived(
            self.next_id,
            self.spec,
            variant,
            self.now_ns,
            slo_ns,
            num_layers,
        );
        task.true_remaining_ns = true_remaining_ns;
        self.next_id += 1;
        self.indexed.on_arrival(&task, &self.lut, self.now_ns);
        self.fold.on_arrival(&task, &self.lut, self.now_ns);
        self.positions.insert(task.id, self.active.len());
        self.tasks.push(task);
        self.active.push(self.tasks.len() - 1);
    }

    /// Drops `active[pos]` keeping the position map in lockstep, the
    /// way the node engine's `swap_remove` does.
    fn drop_active(&mut self, pos: usize) -> TaskState {
        let idx = self.active.swap_remove(pos);
        self.positions.remove(self.tasks[idx].id);
        if pos < self.active.len() {
            self.positions.set(self.tasks[self.active[pos]].id, pos);
        }
        self.tasks[idx].clone()
    }

    /// One pick on both paths; returns `(indexed, fold)` positions.
    /// The picked task then executes one layer for `exec_ns`.
    fn pick_and_execute(&mut self, exec_ns: u64) -> Option<(usize, usize)> {
        if self.active.is_empty() {
            return None;
        }
        let picked_indexed = self.indexed.pick_next(
            TaskQueue::hooked(&self.tasks, &self.active, &self.positions),
            &self.lut,
            self.now_ns,
        );
        let picked_fold = self.fold.pick_next(
            TaskQueue::indexed(&self.tasks, &self.active),
            &self.lut,
            self.now_ns,
        );
        // Advance the winner by one layer regardless of agreement (the
        // caller asserts it), using the indexed pick so a divergence
        // still shrinks deterministically.
        let idx = self.active[picked_indexed];
        self.now_ns += exec_ns;
        {
            let task = &mut self.tasks[idx];
            task.next_layer += 1;
            task.executed_ns += exec_ns;
            task.true_remaining_ns = task.true_remaining_ns.saturating_sub(exec_ns);
        }
        if self.tasks[idx].next_layer >= self.tasks[idx].num_layers {
            let done = self.drop_active(picked_indexed);
            self.indexed.on_task_complete(&done, self.now_ns);
            self.fold.on_task_complete(&done, self.now_ns);
        } else {
            let task = self.tasks[idx].clone();
            self.indexed
                .on_layer_complete(&task, &self.lut, self.now_ns);
            self.fold.on_layer_complete(&task, &self.lut, self.now_ns);
        }
        Some((picked_indexed, picked_fold))
    }

    /// Withdraws one unstarted task (selector `sel`), mirroring
    /// `NodeEngine::take_unstarted`. No-op when everything has started.
    fn remove_unstarted(&mut self, sel: u64) {
        let unstarted: Vec<usize> = (0..self.active.len())
            .filter(|&p| !self.tasks[self.active[p]].started())
            .collect();
        if unstarted.is_empty() {
            return;
        }
        let pos = unstarted[sel as usize % unstarted.len()];
        let removed = self.drop_active(pos);
        self.indexed.on_task_removed(&removed, self.now_ns);
        self.fold.on_task_removed(&removed, self.now_ns);
    }
}

fn lut() -> (SparseModelSpec, ModelInfoLut) {
    let spec = SparseModelSpec::new(ModelId::MobileNet, SparsityPattern::Dense, 0.0);
    let mut store = TraceStore::new();
    store.insert(TraceGenerator::default().generate(&spec, 4, 7));
    (spec, ModelInfoLut::from_store(&store))
}

/// Case count, overridable via `PROPTEST_CASES` so CI's bench-smoke
/// lane can run this equivalence check in quick mode.
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Every policy's indexed pick path is sequence-identical to its
    /// fold under random churn, including the final drain.
    #[test]
    fn indexed_picks_match_fold_picks(
        ops in prop::collection::vec(
            (0u8..4, 1u64..5_000_000, 0u64..1_000),
            1..60,
        ),
    ) {
        let (spec, lut) = lut();
        for policy in Policy::ALL {
            let mut h = Harness::new(policy, lut.clone(), spec);
            let mut picks = 0u32;
            for &(op, a, b) in &ops {
                let op = match op {
                    0 => Op::Arrive,
                    1 => Op::Pick,
                    2 => Op::Remove,
                    _ => Op::Advance,
                };
                match op {
                    // SLOs span instantly-lost to effectively-unbounded,
                    // exercising both feasibility branches of the
                    // deadline-driven policies.
                    Op::Arrive => h.arrive(a.saturating_mul(b + 1), a, 1 + (b as usize % 3)),
                    Op::Pick => {
                        if let Some((indexed, fold)) = h.pick_and_execute(a) {
                            prop_assert_eq!(
                                indexed, fold,
                                "policy {:?} diverged at pick {} (t={})",
                                policy, picks, h.now_ns
                            );
                            picks += 1;
                        }
                    }
                    Op::Remove => h.remove_unstarted(b),
                    Op::Advance => h.now_ns += a,
                }
            }
            // Drain: the tail of the sequence (shrinking queue, every
            // remaining task eventually surfacing) must agree too.
            while let Some((indexed, fold)) = h.pick_and_execute(1_000) {
                prop_assert_eq!(
                    indexed, fold,
                    "policy {:?} diverged during drain (t={})",
                    policy, h.now_ns
                );
            }
        }
    }
}
