//! End-to-end integration: workload generation -> engine -> metrics, for
//! every scheduling policy, across both workload families.

use dysta::core::Policy;
use dysta::hw::HardwareDystaScheduler;
use dysta::sim::{simulate, EngineConfig};
use dysta::workload::{Scenario, WorkloadBuilder};

fn workload(scenario: Scenario, seed: u64) -> dysta::workload::Workload {
    WorkloadBuilder::new(scenario)
        .num_requests(80)
        .samples_per_variant(12)
        .seed(seed)
        .build()
}

#[test]
fn every_policy_completes_both_workload_families() {
    for scenario in [Scenario::MultiAttNn, Scenario::MultiCnn] {
        let w = workload(scenario, 1);
        for policy in Policy::ALL {
            let report = simulate(&w, policy.build().as_mut(), &EngineConfig::default());
            assert_eq!(report.completed().len(), 80, "{policy} on {scenario:?}");
            let m = report.metrics();
            assert!(m.antt >= 1.0, "{policy}: ANTT {}", m.antt);
            assert!(
                (0.0..=1.0).contains(&m.violation_rate),
                "{policy}: violation rate {}",
                m.violation_rate
            );
            assert!(m.throughput_inf_s > 0.0, "{policy}");
        }
    }
}

#[test]
fn dysta_beats_fcfs_on_antt_under_load() {
    for scenario in [Scenario::MultiAttNn, Scenario::MultiCnn] {
        let w = workload(scenario, 2);
        let fcfs = simulate(&w, Policy::Fcfs.build().as_mut(), &EngineConfig::default());
        let dysta = simulate(&w, Policy::Dysta.build().as_mut(), &EngineConfig::default());
        assert!(
            dysta.antt() < fcfs.antt(),
            "{scenario:?}: dysta {} vs fcfs {}",
            dysta.antt(),
            fcfs.antt()
        );
    }
}

#[test]
fn oracle_is_at_least_as_good_as_sparsity_blind_dysta_static_on_antt() {
    // Averaged over seeds: perfect latency knowledge must not lose to a
    // frozen static ordering.
    let mut oracle_antt = 0.0;
    let mut static_antt = 0.0;
    for seed in 0..3 {
        let w = workload(Scenario::MultiAttNn, seed);
        oracle_antt += simulate(
            &w,
            Policy::Oracle.build().as_mut(),
            &EngineConfig::default(),
        )
        .antt();
        static_antt += simulate(
            &w,
            Policy::DystaStatic.build().as_mut(),
            &EngineConfig::default(),
        )
        .antt();
    }
    assert!(
        oracle_antt <= static_antt,
        "oracle {oracle_antt} vs static {static_antt}"
    );
}

#[test]
fn dysta_tracks_oracle_within_margin() {
    // The paper's headline: Dysta closely matches the Oracle.
    for scenario in [Scenario::MultiAttNn, Scenario::MultiCnn] {
        let mut dysta_antt = 0.0;
        let mut oracle_antt = 0.0;
        for seed in 0..3 {
            let w = workload(scenario, seed);
            dysta_antt +=
                simulate(&w, Policy::Dysta.build().as_mut(), &EngineConfig::default()).antt();
            oracle_antt += simulate(
                &w,
                Policy::Oracle.build().as_mut(),
                &EngineConfig::default(),
            )
            .antt();
        }
        assert!(
            dysta_antt <= oracle_antt * 1.5,
            "{scenario:?}: dysta {dysta_antt} oracle {oracle_antt}"
        );
    }
}

#[test]
fn fp16_hardware_scheduler_matches_software_dysta_closely() {
    for scenario in [Scenario::MultiAttNn, Scenario::MultiCnn] {
        let w = workload(scenario, 4);
        let sw = simulate(&w, Policy::Dysta.build().as_mut(), &EngineConfig::default());
        let mut hw = HardwareDystaScheduler::new(Default::default(), 512);
        let hw_report = simulate(&w, &mut hw, &EngineConfig::default());
        let rel = (hw_report.antt() - sw.antt()).abs() / sw.antt();
        assert!(
            rel < 0.15,
            "{scenario:?}: FP16 ANTT {} vs f64 ANTT {}",
            hw_report.antt(),
            sw.antt()
        );
    }
}

#[test]
fn tighter_slo_multiplier_cannot_reduce_violations() {
    for policy in [Policy::Fcfs, Policy::Dysta] {
        let loose = WorkloadBuilder::new(Scenario::MultiCnn)
            .slo_multiplier(50.0)
            .num_requests(80)
            .samples_per_variant(12)
            .seed(5)
            .build();
        let tight = WorkloadBuilder::new(Scenario::MultiCnn)
            .slo_multiplier(2.0)
            .num_requests(80)
            .samples_per_variant(12)
            .seed(5)
            .build();
        let loose_v =
            simulate(&loose, policy.build().as_mut(), &EngineConfig::default()).violation_rate();
        let tight_v =
            simulate(&tight, policy.build().as_mut(), &EngineConfig::default()).violation_rate();
        assert!(
            tight_v >= loose_v,
            "{policy}: tight {tight_v} loose {loose_v}"
        );
    }
}

#[test]
fn lighter_traffic_improves_antt() {
    let slow = WorkloadBuilder::new(Scenario::MultiCnn)
        .arrival_rate(1.0)
        .num_requests(80)
        .samples_per_variant(12)
        .seed(6)
        .build();
    let fast = WorkloadBuilder::new(Scenario::MultiCnn)
        .arrival_rate(5.0)
        .num_requests(80)
        .samples_per_variant(12)
        .seed(6)
        .build();
    for policy in [Policy::Sjf, Policy::Dysta] {
        let a = simulate(&slow, policy.build().as_mut(), &EngineConfig::default()).antt();
        let b = simulate(&fast, policy.build().as_mut(), &EngineConfig::default()).antt();
        assert!(a <= b, "{policy}: light {a} heavy {b}");
    }
}
