//! Every scenario file shipped under `scenarios/` must load, validate,
//! and actually generate: a malformed or drifted example would
//! otherwise only fail for the first user who tries it. Each file is
//! parsed through the public loader, streamed for a bounded prefix,
//! and checked for the source contract (dense ids, monotone arrivals,
//! resolvable traces).

use std::path::PathBuf;

use dysta::workload::{load_scenario, RequestSource};

fn shipped_scenarios() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenarios");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("scenarios/ exists at the repository root")
        .map(|entry| entry.expect("readable directory entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    files.sort();
    files
}

#[test]
fn every_shipped_scenario_parses_and_streams() {
    let files = shipped_scenarios();
    assert!(
        files.len() >= 5,
        "expected the five shipped examples, found {files:?}"
    );
    for path in files {
        let spec = load_scenario(&path)
            .unwrap_or_else(|e| panic!("{} failed to load: {e}", path.display()));
        let store = spec.build_store();
        let mut source = spec.source(&store);

        // Stream a bounded prefix (the files describe long runs) and
        // hold the source to its contract.
        let mut prev_arrival = 0u64;
        for expected_id in 0..1000.min(spec.num_requests) {
            let peeked = source.peek_arrival_ns();
            let request = source
                .next_request()
                .unwrap_or_else(|| panic!("{} ran dry early", path.display()));
            assert_eq!(peeked, Some(request.arrival_ns), "{}", path.display());
            assert_eq!(request.id, expected_id, "{}", path.display());
            assert!(request.arrival_ns >= prev_arrival, "{}", path.display());
            prev_arrival = request.arrival_ns;
            // Panics if the spec is missing from the store.
            let trace = source.trace_for(&request);
            assert!(trace.num_layers() > 0, "{}", path.display());
        }
    }
}

#[test]
fn shipped_scenarios_reload_identically() {
    // Loading a file twice must produce the same spec (the loader has
    // no hidden state), and the spec must re-validate after the parse.
    for path in shipped_scenarios() {
        let first = load_scenario(&path).expect("shipped scenario loads");
        let second = load_scenario(&path).expect("shipped scenario loads");
        assert_eq!(
            format!("{first:?}"),
            format!("{second:?}"),
            "{} loads are not identical",
            path.display()
        );
        first.validate().expect("shipped scenario validates");
    }
}
