//! Cluster scaling: serve one heavy multi-DNN stream on growing pools of
//! accelerator nodes and watch ANTT, throughput, utilization, and load
//! imbalance respond to the dispatch policy.
//!
//! Run with `cargo run --release --example cluster_scaling`.
//!
//! Pass `--trace <path>` to replay the heterogeneous-pool scenario
//! under a [`dysta::obs::RingTracer`] and write a Perfetto/Chrome
//! trace JSON viewable at <https://ui.perfetto.dev>.
//!
//! Pass `--threads N` (default 1) to run the untraced simulations with
//! the sharded advance loop on N worker threads — results are
//! bit-exact with the sequential default.

use dysta::cluster::{
    balanced_mixed_serving_mix, simulate_cluster, simulate_cluster_traced, AcceleratorKind,
    ClusterBuilder, ClusterPolicy, DispatchPolicy, MAX_THREADS,
};
use dysta::core::Policy;
use dysta::obs::RingTracer;
use dysta::workload::{Scenario, WorkloadBuilder};

/// Parses `--trace <path>` from the command line (None when absent).
fn trace_path() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace" {
            let path = args.next().unwrap_or_else(|| {
                eprintln!("--trace requires a path argument");
                std::process::exit(2);
            });
            return Some(path.into());
        }
    }
    None
}

/// Parses `--threads N` from the command line (1 when absent),
/// rejecting counts outside the `ClusterBuilder` knob's bound.
fn threads_arg() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            return args
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|n| (1..=MAX_THREADS).contains(n))
                .unwrap_or_else(|| {
                    eprintln!("--threads requires an integer in 1..={MAX_THREADS}");
                    std::process::exit(2);
                });
        }
    }
    1
}

fn main() {
    let threads = threads_arg();
    if threads > 1 {
        println!("sharded advance on {threads} worker threads (bit-exact with 1)\n");
    }
    // One shared traffic stream: the paper's multi-CNN perception mix at
    // a rate a single Eyeriss-V2 cannot sustain (the single-node default
    // is 3 samples/s; we offer 4x that).
    let workload = WorkloadBuilder::new(Scenario::MultiCnn)
        .arrival_rate(12.0)
        .slo_multiplier(10.0)
        .num_requests(400)
        .samples_per_variant(16)
        .seed(42)
        .build();
    println!(
        "workload: {} requests at 12 samples/s (4x one node's operating point)\n",
        workload.requests().len()
    );

    println!(
        "{:<6} {:<14} {:>7} {:>9} {:>12} {:>10} {:>10}",
        "nodes", "dispatch", "ANTT", "viol %", "thr inf/s", "util", "imbalance"
    );
    for nodes in [1usize, 2, 4, 8] {
        let pool = ClusterBuilder::homogeneous(nodes, AcceleratorKind::EyerissV2, Policy::Dysta)
            .threads(threads)
            .build();
        for dispatch in DispatchPolicy::ALL {
            let report = simulate_cluster(&workload, dispatch.build().as_mut(), &pool);
            let util = report.per_node_utilization();
            let mean_util = util.iter().sum::<f64>() / util.len() as f64;
            println!(
                "{:<6} {:<14} {:>7.3} {:>8.1}% {:>12.1} {:>9.1}% {:>10.2}",
                nodes,
                dispatch.name(),
                report.antt(),
                report.violation_rate() * 100.0,
                report.throughput_inf_s(),
                mean_util * 100.0,
                report.load_imbalance(),
            );
        }
        println!();
    }

    // Heterogeneous pool: CNN + AttNN traffic on a mixed
    // Eyeriss-V2 + Sanger installation. Family-aware affinity routing is
    // the only policy that avoids the mismatch penalty; the mix balances
    // offered load across the pool halves.
    let mixed = WorkloadBuilder::from_mix(balanced_mixed_serving_mix())
        .arrival_rate(40.0)
        .slo_multiplier(10.0)
        .num_requests(400)
        .samples_per_variant(16)
        .seed(42)
        .build();
    println!("heterogeneous pool (2x Eyeriss-V2 + 2x Sanger), mixed CNN+AttNN traffic:");
    let pool = ClusterBuilder::heterogeneous(2, 2, Policy::Dysta)
        .threads(threads)
        .build();
    for dispatch in DispatchPolicy::ALL {
        let report = simulate_cluster(&mixed, dispatch.build().as_mut(), &pool);
        println!(
            "  {:<14} ANTT {:>6.3}  viol {:>5.1}%  thr {:>7.1} inf/s  imbalance {:>5.2}",
            dispatch.name(),
            report.antt(),
            report.violation_rate() * 100.0,
            report.throughput_inf_s(),
            report.load_imbalance(),
        );
    }

    if let Some(path) = trace_path() {
        // Trace the affinity run on the heterogeneous pool — the one
        // whose per-node tracks tell the clearest routing story.
        let mut policy = ClusterPolicy::from_dispatch(DispatchPolicy::SparsityAffinity);
        let tracer = RingTracer::new(1 << 20);
        simulate_cluster_traced(&mixed, &mut policy, &pool, &tracer);
        if let Err(e) = tracer.validate() {
            eprintln!("warning: trace validation failed: {e}");
        }
        std::fs::write(&path, tracer.perfetto_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        });
        println!(
            "\nwrote {} trace events ({} dropped) to {} — open at https://ui.perfetto.dev",
            tracer.len(),
            tracer.dropped(),
            path.display()
        );
    }
}
