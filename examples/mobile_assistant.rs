//! Table 3's mobile-phone scenario: a personal assistant multiplexing
//! machine translation (BART, GPT-2) and question answering (BERT) on a
//! Sanger-class sparse attention NPU.
//!
//! Demonstrates why dynamic attention sparsity matters for scheduling:
//! simple prompts are short and sparse, complex prompts long and dense,
//! so profiled-average estimates mislead sparsity-blind schedulers.
//!
//! Run with `cargo run --release --example mobile_assistant`.

use dysta::core::Policy;
use dysta::sim::{simulate, EngineConfig};
use dysta::workload::{Scenario, WorkloadBuilder};

fn main() {
    println!("mobile personal assistant: BERT + GPT-2 + BART @ 30 req/s\n");
    let workload = WorkloadBuilder::new(Scenario::MobileAssistant)
        .arrival_rate(30.0)
        .slo_multiplier(10.0)
        .num_requests(500)
        .seed(7)
        .build();

    // Show the per-request latency dynamicity the scheduler has to cope
    // with (the paper's Figure 1(c)).
    let mut iso: Vec<f64> = workload
        .requests()
        .iter()
        .map(|r| workload.isolated_ns(r) as f64 / 1e6)
        .collect();
    iso.sort_by(f64::total_cmp);
    println!(
        "isolated latency: p10 {:.1} ms, median {:.1} ms, p90 {:.1} ms ({:.1}x spread)",
        iso[iso.len() / 10],
        iso[iso.len() / 2],
        iso[iso.len() * 9 / 10],
        iso[iso.len() * 9 / 10] / iso[iso.len() / 10]
    );
    println!();

    println!(
        "{:<14} {:>8} {:>12} {:>14}",
        "policy", "ANTT", "viol [%]", "p99 NTT"
    );
    for policy in [
        Policy::Fcfs,
        Policy::Sjf,
        Policy::DystaStatic,
        Policy::Dysta,
    ] {
        let mut scheduler = policy.build();
        let report = simulate(&workload, scheduler.as_mut(), &EngineConfig::default());
        let mut ntts: Vec<f64> = report
            .completed()
            .iter()
            .map(|c| c.normalized_turnaround())
            .collect();
        ntts.sort_by(f64::total_cmp);
        let p99 = ntts[(ntts.len() * 99) / 100 - 1];
        println!(
            "{:<14} {:>8.2} {:>11.1}% {:>14.1}",
            policy.name(),
            report.antt(),
            report.violation_rate() * 100.0,
            p99
        );
    }
}
