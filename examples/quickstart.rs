//! Quickstart: build a sparse multi-DNN workload, schedule it with Dysta,
//! and read the paper's three metrics.
//!
//! Run with `cargo run --release --example quickstart`.

use dysta::core::Policy;
use dysta::sim::{simulate, EngineConfig};
use dysta::workload::{Scenario, WorkloadBuilder};

fn main() {
    // Phase 1 + workload generation: a multi-CNN mix (SSD, ResNet-50,
    // VGG-16, MobileNet with mixed sparsity patterns) arriving at
    // 3 samples/s with a 10x latency SLO.
    let workload = WorkloadBuilder::new(Scenario::MultiCnn)
        .arrival_rate(3.0)
        .slo_multiplier(10.0)
        .num_requests(200)
        .seed(42)
        .build();
    println!(
        "workload: {} requests, offered load {:.2}",
        workload.requests().len(),
        workload.offered_load()
    );

    // Phase 2: replay the workload under two schedulers.
    for policy in [Policy::Sjf, Policy::Dysta] {
        let mut scheduler = policy.build();
        let report = simulate(&workload, scheduler.as_mut(), &EngineConfig::default());
        let m = report.metrics();
        println!(
            "{:<8} ANTT {:.2}  violations {:.1}%  throughput {:.2} inf/s  preemptions {}",
            policy.name(),
            m.antt,
            m.violation_rate * 100.0,
            m.throughput_inf_s,
            report.preemptions()
        );
    }
}
