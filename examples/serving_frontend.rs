//! The cluster serving front-end: admission batching, work stealing,
//! and request migration on a heterogeneous pool.
//!
//! The scenario is the one affinity routing is worst at: CNN-only
//! traffic offered to a mixed Eyeriss-V2 + Sanger installation. Affinity
//! piles every request onto the two CNN nodes while the attention nodes
//! idle; the front-end's stealing and migration put that idle capacity
//! to work (at the mismatch penalty) and the report's new tail-latency
//! fields show what that buys.
//!
//! Run with `cargo run --release --example serving_frontend`.
//!
//! Pass `--trace <path>` to additionally replay the full serving
//! configuration under a [`dysta::obs::RingTracer`] and write a
//! Perfetto/Chrome trace JSON — open it at <https://ui.perfetto.dev>
//! to see per-node execution tracks, request flows, and queue-depth
//! counters.

use dysta::cluster::{
    simulate_cluster, simulate_cluster_traced, ClusterBuilder, ClusterPolicy, DispatchPolicy,
    FrontendConfig, StealConfig, TransferCostConfig,
};
use dysta::core::Policy;
use dysta::obs::RingTracer;
use dysta::workload::{Scenario, WorkloadBuilder};

/// Parses `--trace <path>` from the command line (None when absent).
fn trace_path() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace" {
            let path = args.next().unwrap_or_else(|| {
                eprintln!("--trace requires a path argument");
                std::process::exit(2);
            });
            return Some(path.into());
        }
    }
    None
}

fn main() {
    let workload = WorkloadBuilder::new(Scenario::MultiCnn)
        .arrival_rate(12.0)
        .slo_multiplier(10.0)
        .num_requests(300)
        .samples_per_variant(16)
        .seed(42)
        .build();
    println!(
        "workload: {} CNN requests at 12 samples/s; pool: 2x Eyeriss-V2 + 2x Sanger,\n\
         affinity dispatch (all CNN traffic lands on the 2 Eyeriss nodes)\n",
        workload.requests().len()
    );

    let frontends: [(&str, FrontendConfig); 6] = [
        ("immediate", FrontendConfig::default()),
        (
            "batch k=8",
            FrontendConfig {
                admit_batch: 8,
                ..FrontendConfig::default()
            },
        ),
        (
            "batch 20ms",
            FrontendConfig {
                admit_batch: usize::MAX,
                admit_interval_ns: 20_000_000,
                ..FrontendConfig::default()
            },
        ),
        (
            "+steal",
            FrontendConfig {
                steal: Some(StealConfig::default()),
                ..FrontendConfig::default()
            },
        ),
        ("+steal+migrate", FrontendConfig::serving()),
        // Costed transfers: every move pays a weight/activation
        // re-fetch on the receiving node, under the re-tuned (stricter)
        // steal/migration thresholds.
        ("costed transfers", FrontendConfig::serving_costed()),
    ];

    println!(
        "{:<16} {:>7} {:>9} {:>9} {:>9} {:>9} {:>10} {:>7} {:>9} {:>11}",
        "front-end",
        "ANTT",
        "viol %",
        "p50 ms",
        "p90 ms",
        "p99 ms",
        "imbalance",
        "steals",
        "migrated",
        "adm.wait ms"
    );
    for (name, frontend) in frontends {
        let transfer_cost = if name == "costed transfers" {
            TransferCostConfig::default_costed()
        } else {
            TransferCostConfig::FREE
        };
        let pool = ClusterBuilder::heterogeneous(2, 2, Policy::Dysta)
            .frontend(frontend)
            .transfer_cost(transfer_cost)
            .build();
        let report = simulate_cluster(
            &workload,
            DispatchPolicy::SparsityAffinity.build().as_mut(),
            &pool,
        );
        let p = report.latency_percentiles();
        let s = report.serving();
        println!(
            "{:<16} {:>7.3} {:>8.1}% {:>9.1} {:>9.1} {:>9.1} {:>10.2} {:>7} {:>9} {:>11.2}",
            name,
            report.antt(),
            report.violation_rate() * 100.0,
            p.p50_ns as f64 / 1e6,
            p.p90_ns as f64 / 1e6,
            p.p99_ns as f64 / 1e6,
            report.load_imbalance(),
            s.steals,
            s.migrations,
            s.mean_admission_wait_ns() / 1e6,
        );
    }

    println!(
        "\nStealing helps exactly when matched nodes are saturated while others idle:\n\
         the mismatch penalty (2.5x) is still cheaper than waiting out a deep queue.\n\
         Admission waits are real delay — a held-back request cannot start before\n\
         its batch dispatches — so count-based batches at low arrival rates hold\n\
         requests for a long time and the wait lands straight on ANTT and the tail;\n\
         the 20ms timer caps every wait at the interval (at this sparse arrival\n\
         rate most windows hold one request, so the mean sits near the cap)."
    );

    if let Some(path) = trace_path() {
        // Re-run the full serving configuration under a tracer and dump
        // the Perfetto view of it.
        let pool = ClusterBuilder::heterogeneous(2, 2, Policy::Dysta)
            .frontend(FrontendConfig::serving_costed())
            .transfer_cost(TransferCostConfig::default_costed())
            .build();
        let mut policy = ClusterPolicy::from_dispatch(DispatchPolicy::SparsityAffinity);
        let tracer = RingTracer::new(1 << 20);
        simulate_cluster_traced(&workload, &mut policy, &pool, &tracer);
        if let Err(e) = tracer.validate() {
            eprintln!("warning: trace validation failed: {e}");
        }
        std::fs::write(&path, tracer.perfetto_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        });
        println!(
            "\nwrote {} trace events ({} dropped) to {} — open at https://ui.perfetto.dev",
            tracer.len(),
            tracer.dropped(),
            path.display()
        );
    }
}
