//! Figure 5 reconstruction: the SJF preemption mistake that motivates
//! sparsity-aware scheduling.
//!
//! A ResNet-50 request is mid-flight when a MobileNet request arrives.
//! Without sparsity information SJF estimates the newcomer from the
//! profiled average; with per-sample sparsity the newcomer's true
//! (much shorter) latency is known, flipping the preemption decision.
//!
//! Run with `cargo run --release --example sjf_anecdote`.

use dysta::core::{ModelInfoLut, Policy};
use dysta::models::ModelId;
use dysta::sparsity::SparsityPattern;
use dysta::trace::{SparseModelSpec, TraceGenerator, TraceStore};

fn main() {
    let resnet = SparseModelSpec::new(ModelId::ResNet50, SparsityPattern::RandomPointwise, 0.8);
    let mobilenet = SparseModelSpec::new(ModelId::MobileNet, SparsityPattern::RandomPointwise, 0.7);
    let generator = TraceGenerator::default();
    let mut store = TraceStore::new();
    store.insert(generator.generate(&resnet, 64, 0));
    store.insert(generator.generate(&mobilenet, 64, 0));
    let lut = ModelInfoLut::from_store(&store);

    // Pick the *sparsest* (fastest) MobileNet sample: the case where the
    // profiled average most overestimates its latency.
    let mob_traces = store.get(&mobilenet).unwrap();
    let fast_idx = (0..mob_traces.num_samples() as u64)
        .min_by_key(|&i| mob_traces.sample(i).isolated_latency_ns())
        .unwrap();
    let fast = mob_traces.sample(fast_idx);
    let avg_ms = mob_traces.avg_latency_ns() / 1e6;
    let true_ms = fast.isolated_latency_ns() as f64 / 1e6;
    println!("MobileNet arrival:");
    println!("  profiled-average latency estimate : {avg_ms:.2} ms");
    println!("  true latency of THIS sparse input : {true_ms:.2} ms");
    println!();

    // The paper's Figure 5 is a constructed illustration: the in-flight
    // ResNet-50's remaining time falls *between* the newcomer's true and
    // profiled-average latencies, so the preemption call hinges on which
    // estimate the scheduler trusts. Find the layer boundary where that
    // holds.
    let res_info = lut.expect(&resnet);
    let target_ms = (avg_ms + true_ms) / 2.0;
    let progress = (0..res_info.num_layers())
        .min_by(|&a, &b| {
            let da = (res_info.avg_remaining_ns(a) / 1e6 - target_ms).abs();
            let db = (res_info.avg_remaining_ns(b) / 1e6 - target_ms).abs();
            da.total_cmp(&db)
        })
        .unwrap();
    let res_remaining_ms = res_info.avg_remaining_ns(progress) / 1e6;
    println!(
        "ResNet-50 in flight at layer {progress}/{}: ~{res_remaining_ms:.2} ms remaining",
        res_info.num_layers()
    );
    println!();

    let decision = |estimate_ms: f64| {
        if estimate_ms < res_remaining_ms {
            "PREEMPT (run MobileNet first)"
        } else {
            "no preemption (finish ResNet-50)"
        }
    };
    println!(
        "(a) SJF without sparsity info: estimate {avg_ms:.2} ms -> {}",
        decision(avg_ms)
    );
    println!(
        "(b) SJF with sparsity info   : estimate {true_ms:.2} ms -> {}",
        decision(true_ms)
    );
    println!();
    if decision(avg_ms) != decision(true_ms) {
        println!("sparsity information flipped the preemption decision — the");
        println!("paper's Figure 5 scenario, where (a) violates the MobileNet");
        println!("SLO and (b) meets it.");
    } else {
        println!("note: with this seed both estimates agree; the Dysta policy");
        println!("still refines decisions at every layer boundary.");
    }

    let dysta = Policy::Dysta.build();
    println!(
        "\nthe {} policy makes decision (b) automatically.",
        dysta.name()
    );
}
