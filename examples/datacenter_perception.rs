//! Table 3's data-center scenario: visual perception serving — object
//! detection (SSD) plus image classification (VGG-16, ResNet-50) — under
//! increasing request traffic.
//!
//! Run with `cargo run --release --example datacenter_perception`.

use dysta::core::Policy;
use dysta::sim::{simulate, EngineConfig};
use dysta::workload::{Scenario, WorkloadBuilder};

fn main() {
    println!("data-center visual perception: SSD + VGG-16 + ResNet-50\n");
    println!(
        "{:<6} {:>8} | {:>14} {:>14} {:>14}",
        "rate", "load", "fcfs", "sjf", "dysta"
    );
    for rate in [1.5, 2.0, 2.5, 3.0] {
        let workload = WorkloadBuilder::new(Scenario::DataCenter)
            .arrival_rate(rate)
            .slo_multiplier(10.0)
            .num_requests(300)
            .seed(3)
            .build();
        print!("{:<6} {:>8.2} |", rate, workload.offered_load());
        for policy in [Policy::Fcfs, Policy::Sjf, Policy::Dysta] {
            let mut scheduler = policy.build();
            let report = simulate(&workload, scheduler.as_mut(), &EngineConfig::default());
            print!(
                "  {:>5.2} /{:>5.1}%",
                report.antt(),
                report.violation_rate() * 100.0
            );
        }
        println!();
    }
    println!("\ncells are ANTT / SLO-violation rate; the Dysta column should");
    println!("degrade most gracefully as the offered load approaches 1.");
}
