//! Table 3's AR/VR wearable scenario: hand detection (SSD) plus gesture
//! recognition (MobileNet) under tight latency SLOs on an Eyeriss-V2
//! class NPU.
//!
//! Sweeps the SLO multiplier downwards to show where each scheduler
//! starts violating interactive deadlines.
//!
//! Run with `cargo run --release --example arvr_wearable`.

use dysta::core::Policy;
use dysta::sim::{simulate, EngineConfig};
use dysta::workload::{Scenario, WorkloadBuilder};

fn main() {
    println!("AR/VR wearable: SSD hand detection + MobileNet gestures @ 3 req/s\n");
    let policies = [Policy::Fcfs, Policy::Sjf, Policy::Planaria, Policy::Dysta];
    println!("SLO violation rate [%] per SLO multiplier (tighter -> harder):");
    print!("{:<12}", "policy");
    let multipliers = [2.0, 4.0, 6.0, 10.0, 20.0];
    for m in multipliers {
        print!("{:>8}", format!("x{m:.0}"));
    }
    println!();
    for policy in policies {
        print!("{:<12}", policy.name());
        for m in multipliers {
            let workload = WorkloadBuilder::new(Scenario::ArVrWearable)
                .arrival_rate(3.0)
                .slo_multiplier(m)
                .num_requests(300)
                .seed(11)
                .build();
            let mut scheduler = policy.build();
            let report = simulate(&workload, scheduler.as_mut(), &EngineConfig::default());
            print!("{:>7.1}%", report.violation_rate() * 100.0);
        }
        println!();
    }
    println!();
    println!("gesture recognition (MobileNet) is ~50x shorter than hand");
    println!("detection (SSD): schedulers that cannot estimate remaining");
    println!("time keep the short interactive task stuck behind detections.");
}
